// Package obs is the telemetry subsystem of the ATPG engine: an atomic
// counter/gauge/histogram registry with Prometheus-text exposition, a
// structured JSONL event trace, a periodic progress reporter, and an HTTP
// server exposing /metrics, /debug/vars and net/http/pprof.
//
// The package is deliberately generic — it knows nothing about circuits,
// faults or solvers — so every layer (engine, experiments, CLI) can
// instrument itself without import cycles. All metric types are safe for
// concurrent use; the hot-path cost of an update is one atomic add.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n is larger (atomic); used for
// high-water-mark gauges fed from concurrent workers.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// shardCell pads each shard to its own cache line so concurrent workers
// never contend on adjacent counters (false sharing).
type shardCell struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is a counter split across per-worker cells: each worker
// adds to its own cache line and readers sum on demand. Use it for
// counters updated from many goroutines on a hot path.
type ShardedCounter struct{ cells []shardCell }

// NewShardedCounter returns a counter with n shards (minimum 1).
func NewShardedCounter(n int) *ShardedCounter {
	if n < 1 {
		n = 1
	}
	return &ShardedCounter{cells: make([]shardCell, n)}
}

// Add increments the shard-th cell by n. Any shard index is valid; it is
// reduced modulo the shard count.
func (c *ShardedCounter) Add(shard int, n int64) {
	if shard < 0 {
		shard = -shard
	}
	c.cells[shard%len(c.cells)].v.Add(n)
}

// Value sums all shards.
func (c *ShardedCounter) Value() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// histBuckets is the bucket count of a log2 histogram: bucket 0 holds
// values ≤ 0, bucket i (1..64) holds values in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a log2-bucketed histogram of int64 observations (typically
// nanoseconds, node counts, or permille ratios). The geometric buckets
// cover the full dynamic range of solver behaviour — sub-microsecond easy
// faults to multi-second tails — with constant memory and one atomic add
// per observation.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram returns an unregistered histogram (usable standalone; use
// Registry.Histogram to also expose it on /metrics).
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v)) // v in [2^(idx-1), 2^idx)
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistBucket is one non-empty bucket of a histogram snapshot.
type HistBucket struct {
	// Le is the bucket's inclusive upper bound (2^i − 1 for bucket i).
	Le int64
	// Count is the number of observations in this bucket alone.
	Count int64
}

// HistogramSnapshot is a point-in-time copy of a histogram, safe to read
// without synchronization.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets []HistBucket // non-empty buckets in increasing Le order
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: bucketUpper(i), Count: n})
	}
	return s
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1<<i - 1
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (0..1) from the log buckets; the
// returned value is the geometric midpoint of the bucket holding the
// quantile, so it is accurate to within a factor of √2.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen > rank {
			lo := float64(b.Le)/2 + 1
			if b.Le == 0 {
				return 0
			}
			return int64(math.Sqrt(lo * float64(b.Le)))
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}

// metric is one registered metric: a name, a help string, a Prometheus
// type, and render hooks for the two exposition formats.
type metric struct {
	name, help, typ string
	prom            func(w io.Writer) // sample lines (no HELP/TYPE header)
	value           func() any        // /debug/vars JSON value
}

// Registry is a set of named metrics rendered to the Prometheus text
// exposition format and to /debug/vars JSON. Registration is not
// idempotent: registering a duplicate name panics, as it would silently
// split a time series.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{names: make(map[string]bool)} }

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(metric{
		name: name, help: help, typ: "counter",
		prom:  func(w io.Writer) { fmt.Fprintf(w, "%s %d\n", name, c.Value()) },
		value: func() any { return c.Value() },
	})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(metric{
		name: name, help: help, typ: "gauge",
		prom:  func(w io.Writer) { fmt.Fprintf(w, "%s %d\n", name, g.Value()) },
		value: func() any { return g.Value() },
	})
	return g
}

// GaugeFunc registers a gauge computed on demand by fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(metric{
		name: name, help: help, typ: "gauge",
		prom:  func(w io.Writer) { fmt.Fprintf(w, "%s %g\n", name, fn()) },
		value: func() any { return fn() },
	})
}

// ShardedCounter registers and returns a counter with shards cells.
func (r *Registry) ShardedCounter(name, help string, shards int) *ShardedCounter {
	c := NewShardedCounter(shards)
	r.register(metric{
		name: name, help: help, typ: "counter",
		prom:  func(w io.Writer) { fmt.Fprintf(w, "%s %d\n", name, c.Value()) },
		value: func() any { return c.Value() },
	})
	return c
}

// LabeledCounter is a family of counters distinguished by one label —
// the minimal form of a Prometheus counter vector, used for small,
// bounded label sets (e.g. retry tiers). Series are created lazily by
// With and render as name{label="value"} lines.
type LabeledCounter struct {
	label string
	mu    sync.Mutex
	cells map[string]*Counter
}

// With returns the counter for the given label value, creating the
// series on first use. Counters are safe for concurrent use; With itself
// takes a lock, so hot paths should hold on to the returned counter.
func (c *LabeledCounter) With(value string) *Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr := c.cells[value]
	if ctr == nil {
		ctr = &Counter{}
		c.cells[value] = ctr
	}
	return ctr
}

// Values returns the current count of every series keyed by label value.
func (c *LabeledCounter) Values() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.cells))
	for v, ctr := range c.cells {
		out[v] = ctr.Value()
	}
	return out
}

// LabeledCounter registers and returns a one-label counter family.
func (r *Registry) LabeledCounter(name, help, label string) *LabeledCounter {
	c := &LabeledCounter{label: label, cells: make(map[string]*Counter)}
	r.register(metric{
		name: name, help: help, typ: "counter",
		prom: func(w io.Writer) {
			vals := c.Values()
			keys := make([]string, 0, len(vals))
			for v := range vals {
				keys = append(keys, v)
			}
			sort.Strings(keys)
			for _, v := range keys {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", name, c.label, v, vals[v])
			}
		},
		value: func() any { return c.Values() },
	})
	return c
}

// LabeledGauge is a family of gauges distinguished by one label — the
// minimal form of a Prometheus gauge vector, used for small, bounded
// label sets (e.g. per-job progress on a multi-tenant daemon). Series
// are created lazily by With and removed by Forget once the labelled
// entity is gone, keeping the exposition bounded.
type LabeledGauge struct {
	label string
	mu    sync.Mutex
	cells map[string]*Gauge
}

// With returns the gauge for the given label value, creating the series
// on first use. Gauges are safe for concurrent use; With itself takes a
// lock, so hot paths should hold on to the returned gauge.
func (g *LabeledGauge) With(value string) *Gauge {
	g.mu.Lock()
	defer g.mu.Unlock()
	gg := g.cells[value]
	if gg == nil {
		gg = &Gauge{}
		g.cells[value] = gg
	}
	return gg
}

// Forget drops the series for the given label value, so a retired
// entity (a finished job) stops appearing on /metrics.
func (g *LabeledGauge) Forget(value string) {
	g.mu.Lock()
	delete(g.cells, value)
	g.mu.Unlock()
}

// Values returns the current value of every series keyed by label value.
func (g *LabeledGauge) Values() map[string]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]int64, len(g.cells))
	for v, gg := range g.cells {
		out[v] = gg.Value()
	}
	return out
}

// LabeledGauge registers and returns a one-label gauge family.
func (r *Registry) LabeledGauge(name, help, label string) *LabeledGauge {
	g := &LabeledGauge{label: label, cells: make(map[string]*Gauge)}
	r.register(metric{
		name: name, help: help, typ: "gauge",
		prom: func(w io.Writer) {
			vals := g.Values()
			keys := make([]string, 0, len(vals))
			for v := range vals {
				keys = append(keys, v)
			}
			sort.Strings(keys)
			for _, v := range keys {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", name, g.label, v, vals[v])
			}
		},
		value: func() any { return g.Values() },
	})
	return g
}

// Histogram registers and returns a new log2-bucketed histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := NewHistogram()
	r.register(metric{
		name: name, help: help, typ: "histogram",
		prom: func(w io.Writer) {
			s := h.Snapshot()
			var cum int64
			for _, b := range s.Buckets {
				cum += b.Count
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Le, cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
			fmt.Fprintf(w, "%s_sum %d\n", name, s.Sum)
			fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		},
		value: func() any {
			s := h.Snapshot()
			return map[string]int64{"count": s.Count, "sum": s.Sum}
		},
	})
	return h
}

// MetricInfo describes one registered metric — the introspection view
// hygiene tests and tooling use to audit naming and help conventions.
type MetricInfo struct {
	Name string
	Help string
	// Type is the Prometheus type: "counter", "gauge" or "histogram".
	Type string
}

// Metrics lists every registered metric in registration order.
func (r *Registry) Metrics() []MetricInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricInfo, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = MetricInfo{Name: m.name, Help: m.help, Type: m.typ}
	}
	return out
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in name order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	bw := bufio.NewWriter(w)
	for _, m := range ms {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		m.prom(bw)
	}
	return bw.Flush()
}

// Values returns the current value of every metric keyed by name — the
// payload published under /debug/vars.
func (r *Registry) Values() map[string]any {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make(map[string]any, len(ms))
	for _, m := range ms {
		out[m.name] = m.value()
	}
	return out
}
