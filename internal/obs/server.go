package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// published routes the process-global expvar name "atpg_metrics" to the
// registry most recently passed to Serve, so /debug/vars stays correct
// across successive runs (and tests) without double-Publish panics.
var published struct {
	mu   sync.Mutex
	reg  *Registry
	once sync.Once
}

func publish(reg *Registry) {
	published.mu.Lock()
	published.reg = reg
	published.mu.Unlock()
	published.once.Do(func() {
		expvar.Publish("atpg_metrics", expvar.Func(func() any {
			published.mu.Lock()
			r := published.reg
			published.mu.Unlock()
			if r == nil {
				return nil
			}
			return r.Values()
		}))
	})
}

// Server exposes a registry over HTTP for live inspection of a long ATPG
// run:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/vars    expvar JSON (registry under "atpg_metrics")
//	/debug/pprof/  the standard net/http/pprof profiles
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (host:port; port 0
// picks a free port — read the result from Addr). The server runs until
// Shutdown or Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	return serve(addr, reg, nil)
}

// serve is Serve with an optional handler wrapper — a test seam letting
// shutdown tests hold a request in flight deterministically.
func serve(addr string, reg *Registry, wrap func(http.Handler) http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publish(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		vars := map[string]any{}
		expvar.Do(func(kv expvar.KeyValue) {
			vars[kv.Key] = json.RawMessage(kv.Value.String())
		})
		_ = json.NewEncoder(w).Encode(vars)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	var h http.Handler = mux
	if wrap != nil {
		h = wrap(h)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the server's listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops the listener and waits for in-flight requests — a
// /metrics scrape racing a daemon drain, say — to complete, up to ctx's
// deadline. Past the deadline it falls back to the hard Close so the
// caller always gets its port back.
func (s *Server) Shutdown(ctx context.Context) error {
	if err := s.srv.Shutdown(ctx); err != nil {
		s.srv.Close()
		return err
	}
	return nil
}

// Close shuts the server down immediately, dropping in-flight requests
// — the hard-stop fallback behind Shutdown.
func (s *Server) Close() error { return s.srv.Close() }
