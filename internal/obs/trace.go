package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Trace is a structured event sink: each Emit appends one JSON object as
// a line (JSONL) to the underlying writer. Emits from concurrent workers
// are serialized; a nil *Trace discards events, so instrumented code can
// call Emit unconditionally.
type Trace struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	closer io.Closer
	events atomic.Int64
	err    error
}

// NewTrace wraps w in a buffered JSONL sink. If w is an io.Closer, Close
// closes it after flushing.
func NewTrace(w io.Writer) *Trace {
	bw := bufio.NewWriterSize(w, 1<<16)
	t := &Trace{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	return t
}

// CreateTrace opens (truncating) a JSONL trace file at path.
func CreateTrace(path string) (*Trace, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewTrace(f), nil
}

// Emit appends v as one JSON line. The first write error is retained and
// returned by this and every later call (and by Close).
func (t *Trace) Emit(v any) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if err := t.enc.Encode(v); err != nil {
		t.err = err
		return err
	}
	t.events.Add(1)
	return nil
}

// Events returns the number of events emitted so far.
func (t *Trace) Events() int64 {
	if t == nil {
		return 0
	}
	return t.events.Load()
}

// Close flushes the buffer and closes the underlying writer if it is a
// Closer. It reports the first error seen over the trace's lifetime.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.closer != nil {
		if err := t.closer.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.closer = nil
	}
	return t.err
}
