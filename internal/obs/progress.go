package obs

import (
	"sync"
	"time"
)

// Reporter invokes a callback on a fixed period — the clockwork behind
// live progress lines. Stop is synchronous: once it returns, the callback
// will not run again, so callers may tear down what it reads.
type Reporter struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartReporter calls fn every interval until Stop. A non-positive
// interval returns an inert reporter (Stop is still safe to call).
func StartReporter(every time.Duration, fn func()) *Reporter {
	r := &Reporter{stop: make(chan struct{}), done: make(chan struct{})}
	if every <= 0 || fn == nil {
		close(r.done)
		return r
	}
	go func() {
		defer close(r.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fn()
			case <-r.stop:
				return
			}
		}
	}()
	return r
}

// Stop halts the reporter and waits for any in-flight callback to finish.
// It is idempotent and safe to call from multiple goroutines.
func (r *Reporter) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}
