package obs_test

// Metrics-hygiene audit: every metric the engine registers must carry a
// non-empty help string, counters must end in _total, names must be
// legal Prometheus identifiers, and duplicate registration must panic.
// The test lives in an external package so it can instantiate the real
// engine metric set (internal/atpg imports internal/obs, so the reverse
// import is only legal from a _test package).

import (
	"regexp"
	"strings"
	"testing"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/obs"
)

var promName = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)

func TestEngineMetricsHygiene(t *testing.T) {
	reg := obs.NewRegistry()
	atpg.NewMetrics(reg, 4)
	ms := reg.Metrics()
	if len(ms) == 0 {
		t.Fatal("NewMetrics registered nothing")
	}
	seen := make(map[string]bool)
	for _, m := range ms {
		if m.Help == "" {
			t.Errorf("metric %s has an empty help string", m.Name)
		}
		if !promName.MatchString(m.Name) {
			t.Errorf("metric %s is not a legal Prometheus name", m.Name)
		}
		if seen[m.Name] {
			t.Errorf("metric %s registered twice", m.Name)
		}
		seen[m.Name] = true
		switch m.Type {
		case "counter":
			if !strings.HasSuffix(m.Name, "_total") {
				t.Errorf("counter %s does not end in _total", m.Name)
			}
		case "gauge", "histogram":
			if strings.HasSuffix(m.Name, "_total") {
				t.Errorf("%s %s must not end in _total", m.Type, m.Name)
			}
		default:
			t.Errorf("metric %s has unknown type %q", m.Name, m.Type)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Counter("dup_total", "second")
}
