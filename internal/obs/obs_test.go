package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCounterGaugeSharded(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	s := r.ShardedCounter("s_total", "a sharded counter", 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				s.Add(w, 2)
			}
		}()
	}
	wg.Wait()
	g.Set(-7)
	g.Add(3)
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if s.Value() != 16000 {
		t.Errorf("sharded = %d, want 16000", s.Value())
	}
	if g.Value() != -4 {
		t.Errorf("gauge = %d, want -4", g.Value())
	}
}

func TestShardedCounterAnyShard(t *testing.T) {
	s := NewShardedCounter(0) // clamps to 1 shard
	s.Add(-3, 5)
	s.Add(1000, 5)
	if s.Value() != 10 {
		t.Errorf("value = %d", s.Value())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{0, 1, 1, 3, 100, 100000, -5} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 100100 {
		t.Errorf("sum = %d", h.Sum())
	}
	s := h.Snapshot()
	var total int64
	for i, b := range s.Buckets {
		total += b.Count
		if i > 0 && b.Le <= s.Buckets[i-1].Le {
			t.Errorf("bucket bounds not increasing: %v", s.Buckets)
		}
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, count is %d", total, s.Count)
	}
	// 0 and -5 land in the ≤0 bucket; 1,1 in [1,1]; 3 in [2,3]; etc.
	if s.Buckets[0].Le != 0 || s.Buckets[0].Count != 2 {
		t.Errorf("zero bucket = %+v", s.Buckets[0])
	}
	// Median of {−5,0,1,1,3,100,100000} is 1; the log-bucket estimate must
	// land in the right bucket (within a factor of √2 of 1).
	if q := s.Quantile(0.5); q < 0 || q > 2 {
		t.Errorf("p50 estimate = %d, want ~1", q)
	}
	if q := s.Quantile(0.99); q < 65536 || q > 131071 {
		t.Errorf("p99 estimate = %d, want within [2^16, 2^17)", q)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d", got)
	}
	if m := s.Mean(); m < 14300-1 || m > 14300+1 {
		t.Errorf("mean = %g", m)
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("atpg_faults_done_total", "faults processed").Add(42)
	r.Gauge("atpg_workers", "worker count").Set(4)
	r.GaugeFunc("atpg_coverage", "coverage fraction", func() float64 { return 0.5 })
	h := r.Histogram("atpg_solve_ns", "per-fault solve time")
	h.Observe(1000)
	h.Observe(3000)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE atpg_faults_done_total counter",
		"atpg_faults_done_total 42",
		"# TYPE atpg_workers gauge",
		"atpg_workers 4",
		"atpg_coverage 0.5",
		"# TYPE atpg_solve_ns histogram",
		`atpg_solve_ns_bucket{le="+Inf"} 2`,
		"atpg_solve_ns_sum 4000",
		"atpg_solve_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and non-decreasing.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "atpg_solve_ns_bucket") {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if n < last {
			t.Errorf("bucket counts decrease at %q", line)
		}
		last = n
	}
	vals := r.Values()
	if vals["atpg_faults_done_total"] != int64(42) {
		t.Errorf("Values() = %v", vals)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "")
	r.Counter("x", "")
}

func TestTraceJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	type ev struct {
		Fault string `json:"fault"`
		NS    int64  `json:"ns"`
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if err := tr.Emit(ev{Fault: fmt.Sprintf("n%d/%d", i, j), NS: int64(j)}); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 100 {
		t.Errorf("events = %d", tr.Events())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 100 {
		t.Fatalf("%d lines, want 100", len(lines))
	}
	for _, l := range lines {
		var e ev
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatalf("line %q is not JSON: %v", l, err)
		}
	}
}

func TestNilTrace(t *testing.T) {
	var tr *Trace
	if err := tr.Emit(struct{}{}); err != nil {
		t.Error(err)
	}
	if tr.Events() != 0 {
		t.Error("nil trace recorded events")
	}
	if err := tr.Close(); err != nil {
		t.Error(err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestTraceRetainsFirstError(t *testing.T) {
	tr := NewTrace(failWriter{})
	big := strings.Repeat("x", 1<<17) // larger than the buffer: forces a flush
	if err := tr.Emit(big); err == nil {
		t.Fatal("no error from failing writer")
	}
	if err := tr.Close(); err == nil {
		t.Fatal("Close lost the write error")
	}
}

func TestReporter(t *testing.T) {
	var n atomic.Int64
	r := StartReporter(5*time.Millisecond, func() { n.Add(1) })
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
	if n.Load() == 0 {
		t.Error("reporter never fired")
	}
	after := n.Load()
	time.Sleep(20 * time.Millisecond)
	if n.Load() != after {
		t.Error("reporter fired after Stop")
	}
	inert := StartReporter(0, func() { t.Error("inert reporter fired") })
	inert.Stop()
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("atpg_faults_done_total", "faults processed").Add(7)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "atpg_faults_done_total 7") {
		t.Errorf("/metrics: %d\n%s", code, body)
	}
	code, body := get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["atpg_metrics"]; !ok {
		t.Errorf("/debug/vars missing atpg_metrics: %s", body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}
}

// TestShutdownCompletesInFlightScrape: a /metrics scrape already being
// served when Shutdown starts must complete with its full body — the
// graceful half of the drain contract.
func TestShutdownCompletesInFlightScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("drain_test_total", "").Add(42)
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv, err := serve("127.0.0.1:0", r, func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			once.Do(func() { close(started) })
			<-release
			inner.ServeHTTP(w, req)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		code int
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		got <- result{code: resp.StatusCode, body: string(body)}
	}()
	<-started
	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- srv.Shutdown(ctx) }()
	// Shutdown must wait for the blocked request, not cut it off.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	res := <-got
	if res.err != nil || res.code != 200 || !strings.Contains(res.body, "drain_test_total 42") {
		t.Fatalf("in-flight scrape did not complete cleanly: %+v", res)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestShutdownDeadlineFallsBackToClose: a request that outlives the
// drain deadline must not wedge Shutdown — it reports the deadline and
// hard-closes so the caller gets its port back.
func TestShutdownDeadlineFallsBackToClose(t *testing.T) {
	r := NewRegistry()
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	var once sync.Once
	srv, err := serve("127.0.0.1:0", r, func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			once.Do(func() { close(started) })
			<-release
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil despite a request past the deadline")
	}
	// The fallback Close must have freed the port.
	srv2, err := Serve(srv.Addr(), r)
	if err != nil {
		t.Fatalf("port not released after fallback Close: %v", err)
	}
	srv2.Close()
}

// TestServeRebindsRegistry: a second Serve must route /debug/vars to the
// new registry (the expvar name is process-global).
func TestServeRebindsRegistry(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("only_in_first_total", "").Add(1)
	s1, err := Serve("127.0.0.1:0", r1)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	r2 := NewRegistry()
	r2.Counter("only_in_second_total", "").Add(2)
	s2, err := Serve("127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	resp, err := http.Get("http://" + s2.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "only_in_second_total") {
		t.Errorf("/debug/vars not rebound to new registry: %s", body)
	}
}
