package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestTraceConcurrentWriters pins down the Trace concurrency contract
// under the race detector: every record from every writer survives as
// its own newline-delimited valid JSON line (no torn or interleaved
// lines), and Close flushes everything before returning.
func TestTraceConcurrentWriters(t *testing.T) {
	type rec struct {
		Writer int `json:"writer"`
		Seq    int `json:"seq"`
	}
	const writers, per = 8, 500
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := tr.Emit(rec{Writer: w, Seq: i}); err != nil {
					t.Errorf("Emit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := tr.Events(); got != writers*per {
		t.Fatalf("Events = %d, want %d", got, writers*per)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close, the full payload is in the sink — nothing stuck in the
	// bufio layer.
	seen := make([][]bool, writers)
	for w := range seen {
		seen[w] = make([]bool, per)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Bytes()
		var r rec
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("torn or invalid line %q: %v", line, err)
		}
		if r.Writer < 0 || r.Writer >= writers || r.Seq < 0 || r.Seq >= per {
			t.Fatalf("out-of-range record %+v", r)
		}
		if seen[r.Writer][r.Seq] {
			t.Fatalf("duplicate record %+v", r)
		}
		seen[r.Writer][r.Seq] = true
		lines++
	}
	if lines != writers*per {
		t.Fatalf("got %d lines, want %d", lines, writers*per)
	}
	// Per-writer order is preserved: Emit holds the mutex for the whole
	// encode, so writer w's seq i must appear before its seq i+1 — already
	// implied by seen[] having no gaps once the count matches.
	for w := range seen {
		for i, ok := range seen[w] {
			if !ok {
				t.Fatalf("missing record writer=%d seq=%d", w, i)
			}
		}
	}
}

// TestTraceCloseFlushOrdering checks the flush-on-close ordering: events
// emitted before Close are visible in the sink after Close returns even
// when the buffered writer never filled.
func TestTraceCloseFlushOrdering(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	if err := tr.Emit(map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Log("note: event reached the sink before Close (buffer flushed early)")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("Close returned with the event still buffered")
	}
}
