package atpgeasy

// BENCH_atpg.json emission: benchmarks that call recordBench have their
// latest timing written to BENCH_atpg.json by TestMain after a `-bench`
// run, so perf regressions across the parallel engine and the telemetry
// hooks are diffable in review. A plain `go test` run records nothing and
// writes nothing.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
)

// benchRecord is one row of BENCH_atpg.json.
type benchRecord struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Workers int     `json:"workers,omitempty"`
	// AllocsPerOp is filled by benchmarks that measure allocation counts
	// (the solver-cache and arena A/B benches); 0 means not measured.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// SATCalls is filled by the end-to-end A/B benches that count SAT
	// solver invocations per run (the RPT pre-phase ablation). A pointer
	// so a measured zero — RPT detected every fault — still serializes,
	// while rows that do not measure it omit the field.
	SATCalls *int `json:"sat_calls,omitempty"`
	// Conflicts is filled by the incremental-CDCL A/B rows: total solver
	// conflicts over the whole run. A pointer so a measured zero — the
	// circuit never conflicted — still serializes.
	Conflicts *int64 `json:"conflicts,omitempty"`
	// SpeedupVsWorkers1 is filled post-merge on workers-N rows (N > 1)
	// whose benchmark family also has a workers-1 row: the ratio of the
	// workers-1 ns/op to this row's ns/op. cmd/scalecheck gates on it.
	SpeedupVsWorkers1 float64 `json:"speedup_vs_workers1,omitempty"`
	// CPUs is runtime.NumCPU() at record time, on rows with a worker
	// count: a speedup measured on a single-core box says nothing about
	// scaling, so consumers (cmd/scalecheck) skip rows with CPUs < 2.
	CPUs int `json:"cpus,omitempty"`
}

var benchRecords struct {
	sync.Mutex
	byName map[string]benchRecord
}

// recordBench stores the current ns/op for the running (sub-)benchmark.
// Call it at the end of the b.Run closure; the testing package invokes
// the closure several times with growing b.N, and the last (largest-N,
// most accurate) invocation wins.
func recordBench(b *testing.B, workers int) {
	recordBenchAllocs(b, workers, 0)
}

// recordBenchAllocs is recordBench for benchmarks that also measured an
// allocation count per operation (via testing.AllocsPerRun, outside the
// timed loop).
func recordBenchAllocs(b *testing.B, workers int, allocsPerOp float64) {
	record(b, benchRecord{Workers: workers, AllocsPerOp: allocsPerOp})
}

// recordBenchSAT is recordBench for end-to-end benchmarks that also
// counted SAT solver invocations per run — the RPT ablation's headline
// number.
func recordBenchSAT(b *testing.B, workers, satCalls int) {
	record(b, benchRecord{Workers: workers, SATCalls: &satCalls})
}

// recordBenchConflicts is recordBench for end-to-end benchmarks that
// also counted total solver conflicts per run — the incremental-CDCL
// ablation's headline number.
func recordBenchConflicts(b *testing.B, workers int, conflicts int64) {
	record(b, benchRecord{Workers: workers, Conflicts: &conflicts})
}

func record(b *testing.B, r benchRecord) {
	b.Helper()
	if b.N == 0 {
		return
	}
	r.Name = b.Name()
	r.NsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	if r.Workers > 0 {
		r.CPUs = runtime.NumCPU()
	}
	benchRecords.Lock()
	defer benchRecords.Unlock()
	if benchRecords.byName == nil {
		benchRecords.byName = map[string]benchRecord{}
	}
	benchRecords.byName[r.Name] = r
}

// benchFamily splits a "<family>/workers-N" row name; ok is false for
// rows that are not part of a worker-scaling family.
func benchFamily(r benchRecord) (family string, ok bool) {
	if r.Workers <= 0 {
		return "", false
	}
	suffix := fmt.Sprintf("/workers-%d", r.Workers)
	if !strings.HasSuffix(r.Name, suffix) {
		return "", false
	}
	return strings.TrimSuffix(r.Name, suffix), true
}

// fillSpeedups computes SpeedupVsWorkers1 on every workers-N row (N > 1)
// whose family has a workers-1 baseline. Runs after the on-disk merge so
// a partial -bench run that only refreshed some rows still gets ratios
// against the surviving baseline.
func fillSpeedups(recs []benchRecord) {
	base := map[string]float64{}
	for _, r := range recs {
		if fam, ok := benchFamily(r); ok && r.Workers == 1 {
			base[fam] = r.NsPerOp
		}
	}
	for i := range recs {
		fam, ok := benchFamily(recs[i])
		if !ok || recs[i].Workers == 1 {
			continue
		}
		if b1, have := base[fam]; have && recs[i].NsPerOp > 0 {
			recs[i].SpeedupVsWorkers1 = b1 / recs[i].NsPerOp
		}
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	benchRecords.Lock()
	recs := make([]benchRecord, 0, len(benchRecords.byName))
	for _, r := range benchRecords.byName {
		recs = append(recs, r)
	}
	benchRecords.Unlock()
	if len(recs) > 0 {
		// Merge with any rows already on disk so a partial -bench run
		// (e.g. only the solver-cache benches) refreshes its own rows
		// without discarding the rest of the file.
		if old, err := os.ReadFile("BENCH_atpg.json"); err == nil {
			var prev []benchRecord
			if json.Unmarshal(old, &prev) == nil {
				fresh := make(map[string]bool, len(recs))
				for _, r := range recs {
					fresh[r.Name] = true
				}
				for _, r := range prev {
					if !fresh[r.Name] {
						recs = append(recs, r)
					}
				}
			}
		}
		fillSpeedups(recs)
		sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
		buf, err := json.MarshalIndent(recs, "", "  ")
		if err == nil {
			buf = append(buf, '\n')
			err = os.WriteFile("BENCH_atpg.json", buf, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: writing BENCH_atpg.json: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}
