package atpgeasy

import (
	"context"
	"strings"
	"testing"
	"time"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
)

func TestFacadeQuickstart(t *testing.T) {
	b := NewBuilder("demo")
	x := b.Input("x")
	y := b.Input("y")
	b.MarkOutput(b.Gate(And, "g", x, y))
	c := b.MustBuild()
	res, err := GenerateTest(c, Fault{Net: c.MustLookup("g"), StuckAt: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Detected {
		t.Fatalf("status = %v", res.Status)
	}
	if !VerifyTest(c, res.Fault, res.Vector) {
		t.Error("vector does not verify")
	}
}

func TestFacadeRunATPG(t *testing.T) {
	c := gen.RippleAdder(4)
	sum, err := RunATPG(c)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Coverage() != 1 {
		t.Errorf("coverage = %v", sum.Coverage())
	}
	if sum.Aborted != 0 {
		t.Errorf("aborted = %d", sum.Aborted)
	}
}

func TestFacadeRunATPGParallel(t *testing.T) {
	c := gen.CarryLookaheadAdder(8)
	sum, err := RunATPGParallel(context.Background(), c, 4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Coverage() != 1 {
		t.Errorf("coverage = %v", sum.Coverage())
	}
	if sum.Aborted != 0 {
		t.Errorf("aborted = %d under a generous budget", sum.Aborted)
	}
	if sum.WallElapsed <= 0 {
		t.Error("WallElapsed not recorded")
	}
	if sum.DetectedByRPT == 0 || sum.RPTBatches == 0 {
		t.Errorf("random-pattern pre-phase inactive by default: rpt=%d batches=%d",
			sum.DetectedByRPT, sum.RPTBatches)
	}
	// Serial reference must agree on the aggregate verdicts.
	ref, err := RunATPGParallel(context.Background(), c, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Untestable != sum.Untestable || ref.Detected+ref.DroppedByFaultSim != sum.Detected+sum.DroppedByFaultSim {
		t.Errorf("parallel (D%d+S%d U%d) disagrees with serial (D%d+S%d U%d)",
			sum.Detected, sum.DroppedByFaultSim, sum.Untestable,
			ref.Detected, ref.DroppedByFaultSim, ref.Untestable)
	}
}

func TestFacadeSolversAgree(t *testing.T) {
	c := logic.Figure4a()
	f, err := EncodeATPG(c, Fault{Net: c.MustLookup("f"), StuckAt: true})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDPLL().Solve(f)
	s := NewSimple(nil).Solve(f)
	k := NewCaching(nil).Solve(f)
	if d.Status != s.Status || s.Status != k.Status {
		t.Errorf("solver disagreement: %v %v %v", d.Status, s.Status, k.Status)
	}
}

func TestFacadeWidthPipeline(t *testing.T) {
	c := gen.RippleAdder(8)
	w, order := EstimateCutWidth(c)
	if w <= 0 || len(order) != c.NumNodes() {
		t.Fatalf("w=%d len(order)=%d", w, len(order))
	}
	faults := CollapseFaults(c, AllFaults(c))
	points, err := WidthProfile(c, faults)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := ClassifyWidthGrowth(points)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Curves) == 0 {
		t.Error("no fitted curves")
	}
	if Theorem41Bound(10, 1, 2) != 160 {
		t.Error("Theorem41Bound re-export broken")
	}
}

func TestFacadeIORoundTrip(t *testing.T) {
	c := gen.Comparator(3)
	var benchOut, blifOut strings.Builder
	if err := WriteBench(&benchOut, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteBLIF(&blifOut, c); err != nil {
		t.Fatal(err)
	}
	cb, err := ReadBench(strings.NewReader(benchOut.String()), "cmp3")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := ReadBLIF(strings.NewReader(blifOut.String()))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decompose(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	for pat := 0; pat < 64; pat++ {
		in := make([]bool, 6)
		for i := range in {
			in[i] = pat>>uint(i)&1 == 1
		}
		want := c.SimulateOutputs(in)
		for name, got := range map[string][]bool{
			"bench":  cb.SimulateOutputs(in),
			"blif":   cl.SimulateOutputs(in),
			"decomp": m.SimulateOutputs(in),
		} {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: pattern %06b output %d differs", name, pat, i)
				}
			}
		}
	}
}

func TestFacadeGenerateTestBounded(t *testing.T) {
	c := logic.Figure4a()
	res, err := GenerateTestBounded(c, Fault{Net: c.MustLookup("f"), StuckAt: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Detected {
		t.Fatalf("status = %v", res.Status)
	}
	if !VerifyTest(c, Fault{Net: c.MustLookup("f"), StuckAt: true}, res.Vector) {
		t.Error("vector does not verify")
	}
	if res.MiterWidth > 2*res.CircuitWidth+2 {
		t.Errorf("miter width %d breaks the Lemma 4.2 bound for W=%d", res.MiterWidth, res.CircuitWidth)
	}
	if float64(res.Nodes) > 4*res.NodeBound {
		t.Errorf("nodes %d exceed 4× the Theorem 4.1 bound %g", res.Nodes, res.NodeBound)
	}
}
