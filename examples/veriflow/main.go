// Verification flow: SAT-based combinational equivalence checking — one
// of the ATPG-technique applications the paper's introduction motivates
// (Brand's verification-by-ATPG). Two implementations of the same
// function are joined in a miter; the output is provably 0 iff they are
// equivalent, decided with the library's SAT solvers.
package main

import (
	"fmt"
	"log"

	"atpgeasy"
	"atpgeasy/internal/gen"
)

func main() {
	// Reference: an 8-bit ripple-carry adder. Revised: the same function
	// after technology decomposition (a "synthesized" version) — and a
	// deliberately buggy mutant.
	golden := gen.RippleAdder(8)
	synthesized, err := atpgeasy.Decompose(golden, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("golden:     ", golden)
	fmt.Println("synthesized:", synthesized)

	eq, cex, err := equivalent(golden, synthesized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden ≡ synthesized: %v\n", eq)

	buggy := buggyAdder()
	eq, cex, err = equivalent(golden, buggy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden ≡ buggy mutant: %v\n", eq)
	if !eq {
		fmt.Printf("counterexample inputs: %v\n", cex)
		g := golden.SimulateOutputs(cex)
		b := buggy.SimulateOutputs(cex)
		fmt.Printf("  golden outputs: %v\n  buggy outputs:  %v\n", g, b)
	}
}

// equivalent builds the pairwise-XOR miter of two circuits with identical
// interfaces and decides CIRCUIT-SAT on it: SAT means inequivalent and
// the model is a counterexample.
func equivalent(a, b *atpgeasy.Circuit) (bool, []bool, error) {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return false, nil, fmt.Errorf("interface mismatch")
	}
	bb := atpgeasy.NewBuilder("miter")
	ins := make([]int, len(a.Inputs))
	for i, id := range a.Inputs {
		ins[i] = bb.Input(a.Node(id).Name)
	}
	aOut := instantiate(bb, a, "A_", ins)
	bOut := instantiate(bb, b, "B_", ins)
	for i := range aOut {
		bb.MarkOutput(bb.Gate(atpgeasy.Xor, fmt.Sprintf("diff%d", i), aOut[i], bOut[i]))
	}
	miter := bb.MustBuild()
	formula, err := atpgeasy.EncodeCircuitSAT(miter)
	if err != nil {
		return false, nil, err
	}
	sol := atpgeasy.NewDPLL().Solve(formula)
	switch sol.Status.String() {
	case "UNSAT":
		return true, nil, nil
	case "SAT":
		cex := make([]bool, len(ins))
		for i, id := range ins {
			cex[i] = sol.Model[id]
		}
		return false, cex, nil
	default:
		return false, nil, fmt.Errorf("solver aborted")
	}
}

// instantiate copies circuit c into the builder with renamed internal
// nets, wiring its primary inputs to the given nets; it returns the nets
// carrying c's outputs.
func instantiate(bb *atpgeasy.Builder, c *atpgeasy.Circuit, prefix string, ins []int) []int {
	mapped := make([]int, c.NumNodes())
	for i, id := range c.Inputs {
		mapped[id] = ins[i]
	}
	for _, id := range c.TopoOrder() {
		n := c.Node(id)
		switch n.Type {
		case atpgeasy.Input:
			// already wired
		case atpgeasy.Const0:
			mapped[id] = bb.Const(prefix+n.Name, false)
		case atpgeasy.Const1:
			mapped[id] = bb.Const(prefix+n.Name, true)
		default:
			fanin := make([]int, len(n.Fanin))
			for i, f := range n.Fanin {
				fanin[i] = mapped[f]
			}
			mapped[id] = bb.GateN(n.Type, prefix+n.Name, fanin, n.Neg)
		}
	}
	outs := make([]int, len(c.Outputs))
	for i, o := range c.Outputs {
		outs[i] = mapped[o]
	}
	return outs
}

// buggyAdder is an 8-bit ripple adder with the carry into bit 5 swapped
// for the propagate signal — a realistic wiring bug.
func buggyAdder() *atpgeasy.Circuit {
	b := atpgeasy.NewBuilder("buggy8")
	as := make([]int, 8)
	bs := make([]int, 8)
	for i := range as {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := range bs {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	carry := b.Input("cin")
	for i := 0; i < 8; i++ {
		axb := b.Gate(atpgeasy.Xor, fmt.Sprintf("fa%d_axb", i), as[i], bs[i])
		cin := carry
		if i == 5 {
			cin = axb // the bug
		}
		sum := b.Gate(atpgeasy.Xor, fmt.Sprintf("fa%d_s", i), axb, cin)
		t1 := b.Gate(atpgeasy.And, fmt.Sprintf("fa%d_t1", i), as[i], bs[i])
		t2 := b.Gate(atpgeasy.And, fmt.Sprintf("fa%d_t2", i), axb, cin)
		carry = b.Gate(atpgeasy.Or, fmt.Sprintf("fa%d_c", i), t1, t2)
		b.MarkOutput(sum)
	}
	b.MarkOutput(carry)
	return b.MustBuild()
}
