// Sequential test generation — the paper's stated future-work direction
// ("sequential circuit netlists") via time-frame expansion: a 4-bit
// LFSR-style state machine is unrolled frame by frame, a stuck-at fault
// is injected into every frame, and SAT over the unrolled miter finds the
// shortest detecting input sequence from the reset state.
package main

import (
	"fmt"
	"log"

	"atpgeasy"
	"atpgeasy/internal/atpg"
	"atpgeasy/internal/seq"
)

func main() {
	s := buildLFSR()
	fmt.Printf("machine: %s (%d PI, %d PO, %d FFs)\n", s.Comb, s.NumPI, s.NumPO, s.NumFF)

	// Seed the LFSR with 0001: the all-zeros state is the classic LFSR
	// dead state (zero feedback forever), from which most faults are
	// genuinely undetectable.
	reset := []bool{true, false, false, false}
	faults := atpgeasy.CollapseFaults(s.Comb, atpgeasy.AllFaults(s.Comb))
	detected, aborted := 0, 0
	longest := 0
	for _, f := range faults {
		res, err := seq.TestFault(s, f, 6, reset, nil)
		if err != nil {
			log.Fatal(err)
		}
		switch res.Status {
		case atpg.Detected:
			detected++
			if res.Frames > longest {
				longest = res.Frames
				fmt.Printf("  %-12s needs a %d-cycle sequence: %s\n",
					f.Name(s.Comb), res.Frames, renderSeq(res.Inputs))
			}
		default:
			aborted++
		}
	}
	fmt.Printf("faults: %d  detected: %d  not detected within 6 frames: %d\n",
		len(faults), detected, aborted)
	fmt.Printf("longest required sequence: %d cycles\n", longest)
}

// buildLFSR builds a 4-bit linear feedback shift register with an enable
// input and a single serial output tapping the last stage.
func buildLFSR() *seq.Circuit {
	b := atpgeasy.NewBuilder("lfsr4")
	en := b.Input("en")
	st := make([]int, 4)
	for i := range st {
		st[i] = b.Input(fmt.Sprintf("s%d", i))
	}
	fb := b.Gate(atpgeasy.Xor, "fb", st[2], st[3]) // taps at stages 3,4
	// Serial output observes only the last stage.
	out := b.GateN(atpgeasy.Buf, "serial", []int{st[3]}, nil)
	b.MarkOutput(out)
	// Next state: shift when enabled, hold otherwise (2:1 mux per bit).
	hold := func(i int, shifted int) int {
		h := b.GateN(atpgeasy.And, fmt.Sprintf("h%d", i), []int{en, st[i]}, []bool{true, false})
		sft := b.Gate(atpgeasy.And, fmt.Sprintf("e%d", i), en, shifted)
		return b.Gate(atpgeasy.Or, fmt.Sprintf("n%d", i), h, sft)
	}
	b.MarkOutput(hold(0, fb))
	for i := 1; i < 4; i++ {
		b.MarkOutput(hold(i, st[i-1]))
	}
	s, err := seq.New(b.MustBuild(), 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func renderSeq(inputs [][]bool) string {
	out := make([]byte, len(inputs))
	for i, in := range inputs {
		out[i] = '0'
		if in[0] {
			out[i] = '1'
		}
	}
	return "en=" + string(out)
}
