// Quickstart: build a small circuit with the atpgeasy facade, generate a
// test for a stuck-at fault, prove another fault untestable, and inspect
// the cut-width property that makes the instances easy.
package main

import (
	"fmt"
	"log"

	"atpgeasy"
)

func main() {
	// A 2-bit equality comparator with a redundant gate:
	//   eq = XNOR(a0,b0) ∧ XNOR(a1,b1)
	//   red = a0 ∧ ¬a0 ∧ b0   (always 0 — its stuck-at-0 fault is untestable)
	//   out = eq ∨ red
	b := atpgeasy.NewBuilder("quickstart")
	a0 := b.Input("a0")
	a1 := b.Input("a1")
	b0 := b.Input("b0")
	b1 := b.Input("b1")
	e0 := b.Gate(atpgeasy.Xnor, "e0", a0, b0)
	e1 := b.Gate(atpgeasy.Xnor, "e1", a1, b1)
	eq := b.Gate(atpgeasy.And, "eq", e0, e1)
	red := b.GateN(atpgeasy.And, "red", []int{a0, a0, b0}, []bool{false, true, false})
	out := b.Gate(atpgeasy.Or, "out", eq, red)
	b.MarkOutput(out)
	c := b.MustBuild()
	fmt.Println("circuit:", c)

	// Generate a test for "eq stuck-at-1": need the comparator to say
	// "different" while the fault forces "equal".
	res, err := atpgeasy.GenerateTest(c, atpgeasy.Fault{Net: c.MustLookup("eq"), StuckAt: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault eq/1: %v\n", res.Status)
	fmt.Printf("  ATPG-SAT instance: %d variables, %d clauses, solved in %v\n",
		res.Vars, res.Clauses, res.Elapsed)
	fmt.Printf("  test vector (a0,a1,b0,b1) = %v, verified: %v\n",
		res.Vector, atpgeasy.VerifyTest(c, res.Fault, res.Vector))

	// The redundant gate's stuck-at-0 fault has no test: the SAT instance
	// is unsatisfiable.
	res, err = atpgeasy.GenerateTest(c, atpgeasy.Fault{Net: c.MustLookup("red"), StuckAt: false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault red/0: %v (the gate is redundant — no test exists)\n", res.Status)

	// Why was this easy? The circuit has a tiny cut-width, so Theorem 4.1
	// bounds the caching-backtracking search polynomially.
	w, _ := atpgeasy.EstimateCutWidth(c)
	fmt.Printf("estimated cut-width W = %d; Theorem 4.1 node bound n·2^(2·k_fo·W) = %.0f\n",
		w, atpgeasy.Theorem41Bound(c.NumNodes(), c.MaxFanout(), w))

	// Full-circuit run: every collapsed stuck-at fault, with test-set
	// compaction by fault simulation.
	sum, err := atpgeasy.RunATPG(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full run: %d faults → %d detected, %d untestable, %d vectors, coverage %.0f%%\n",
		sum.Total, sum.Detected+sum.DroppedByFaultSim, sum.Untestable,
		len(sum.Vectors), 100*sum.Coverage())
}
