// Test generation for a realistic datapath block: build a 16-bit ALU,
// technology-decompose it the way TEGUS requires, run full-fault ATPG with
// collapsing and fault-simulation compaction, and emit the production
// artifacts (test vectors + a .bench netlist for the tester).
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"atpgeasy"
	"atpgeasy/internal/gen"
)

func main() {
	alu := gen.ALU(16)
	fmt.Println("design:", alu)

	// TEGUS maps to simple ≤3-input AND/OR gates before building SAT
	// formulas; so do we.
	mapped, err := atpgeasy.Decompose(alu, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after tech_decomp:", mapped)

	all := atpgeasy.AllFaults(mapped)
	collapsed := atpgeasy.CollapseFaults(mapped, all)
	fmt.Printf("fault list: %d stuck-at faults, %d after structural collapsing (%.0f%%)\n",
		len(all), len(collapsed), 100*float64(len(collapsed))/float64(len(all)))

	sum, err := atpgeasy.RunATPG(mapped)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ATPG: %d solver calls, %d dropped by fault simulation, SAT time %v\n",
		len(sum.Results), sum.DroppedByFaultSim, sum.Elapsed)
	fmt.Printf("coverage of testable faults: %.2f%%  (%d untestable/redundant faults found)\n",
		100*sum.Coverage(), sum.Untestable)
	fmt.Printf("compacted test set: %d vectors for %d faults\n", len(sum.Vectors), sum.Total)

	// Largest SAT instances of the run — the Figure 1 tail.
	maxVars, maxIdx := 0, -1
	for i, r := range sum.Results {
		if r.Vars > maxVars {
			maxVars, maxIdx = r.Vars, i
		}
	}
	if maxIdx >= 0 {
		r := sum.Results[maxIdx]
		fmt.Printf("largest ATPG-SAT instance: %s — %d vars, %d clauses, %v\n",
			r.Fault.Name(mapped), r.Vars, r.Clauses, r.Elapsed)
	}

	// Write tester artifacts.
	if err := writeVectors("alu16_tests.txt", mapped, sum.Vectors); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("alu16_mapped.bench")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := atpgeasy.WriteBench(f, mapped); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote alu16_tests.txt and alu16_mapped.bench")
}

func writeVectors(path string, c *atpgeasy.Circuit, vectors [][]bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# inputs: %s\n", strings.Join(c.Names(c.Inputs), " "))
	for _, v := range vectors {
		row := make([]byte, len(v))
		for i, bit := range v {
			row[i] = '0'
			if bit {
				row[i] = '1'
			}
		}
		fmt.Fprintf(f, "%s\n", row)
	}
	return nil
}
