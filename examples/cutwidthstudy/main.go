// Cut-width study: measure how the cut-width of ATPG subcircuits grows
// with circuit size across three structural families — the per-family
// version of the paper's Figure 8 — and classify each family against the
// log-bounded-width property of Definition 5.1.
package main

import (
	"fmt"
	"log"

	"atpgeasy"
	"atpgeasy/internal/fit"
	"atpgeasy/internal/gen"
)

func main() {
	families := []struct {
		name     string
		circuits []*atpgeasy.Circuit
	}{
		{"ripple adders (k-bounded)", []*atpgeasy.Circuit{
			gen.RippleAdder(4), gen.RippleAdder(8), gen.RippleAdder(16), gen.RippleAdder(32),
		}},
		{"parity trees (tree-like)", []*atpgeasy.Circuit{
			gen.ParityTree(8), gen.ParityTree(16), gen.ParityTree(32), gen.ParityTree(64),
		}},
		{"random logic (locality-bounded)", []*atpgeasy.Circuit{
			gen.Random(gen.RandomParams{Inputs: 10, Gates: 80, Seed: 1}),
			gen.Random(gen.RandomParams{Inputs: 16, Gates: 250, Seed: 2}),
			gen.Random(gen.RandomParams{Inputs: 30, Gates: 800, Seed: 3}),
		}},
		{"array multipliers (global reconvergence)", []*atpgeasy.Circuit{
			gen.ArrayMultiplier(3), gen.ArrayMultiplier(4), gen.ArrayMultiplier(6), gen.ArrayMultiplier(8),
		}},
	}

	for _, fam := range families {
		var points []atpgeasy.FaultWidth
		for _, c := range fam.circuits {
			mapped, err := atpgeasy.Decompose(c, 3)
			if err != nil {
				log.Fatal(err)
			}
			faults := atpgeasy.CollapseFaults(mapped, atpgeasy.AllFaults(mapped))
			// Sample a slice of the fault list to keep the example quick.
			if len(faults) > 25 {
				step := len(faults) / 25
				var sampled []atpgeasy.Fault
				for i := 0; i < len(faults); i += step {
					sampled = append(sampled, faults[i])
				}
				faults = sampled
			}
			pts, err := atpgeasy.WidthProfile(mapped, faults)
			if err != nil {
				log.Fatal(err)
			}
			points = append(points, pts...)
		}
		cl, err := atpgeasy.ClassifyWidthGrowth(points)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %d datapoints\n", fam.name, len(points))
		for _, c := range cl.Curves {
			fmt.Printf("  %s\n", c)
		}
		verdict := "log-bounded-width: ATPG provably easy (Lemma 5.1)"
		if !cl.LogBounded {
			if cl.Curves[0].Kind == fit.Power && cl.Curves[0].B < 1 {
				verdict = "sublinear width growth (power fit won on this size range)"
			} else {
				verdict = "width grows quickly — the hard class (cf. C6288-style multipliers)"
			}
		}
		fmt.Printf("  verdict: %s\n\n", verdict)
	}
}
