package main

import "testing"

func TestBuildFamily(t *testing.T) {
	for _, name := range []string{"ripple", "cla", "mult", "alu", "parity", "decoder", "mux", "cmp", "cell1d"} {
		c, err := buildFamily(name, 4, 0)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := c.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if c, err := buildFamily("cell2d", 3, 4); err != nil || c.NumGates() == 0 {
		t.Errorf("cell2d: %v", err)
	}
	if c, err := buildFamily("tree", 2, 3); err != nil || len(c.Inputs) != 8 {
		t.Errorf("tree: %v", err)
	}
	// tree with default depth
	if _, err := buildFamily("tree", 2, 0); err != nil {
		t.Errorf("tree default: %v", err)
	}
	if _, err := buildFamily("bogus", 4, 0); err == nil {
		t.Error("bogus family accepted")
	}
}
