// Command circgen generates parameterized combinational circuits (the
// circ/gen role of Section 5.2.3 of "Why is ATPG Easy?") and writes them
// as .bench or BLIF netlists.
//
// Usage:
//
//	circgen -gates N [-inputs N] [-outputs N] [-locality F] [-seed N]
//	        [-format bench|blif] [-o FILE] [-decompose]
//
// or a structured family:
//
//	circgen -family ripple|cla|mult|alu|parity|decoder|mux|cmp|cell1d|cell2d|tree -n N [-m M] ...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"atpgeasy/internal/bench"
	"atpgeasy/internal/blif"
	"atpgeasy/internal/decomp"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
)

func main() {
	gates := flag.Int("gates", 0, "random circuit: gate count")
	inputs := flag.Int("inputs", 0, "random circuit: primary inputs (default derived)")
	outputs := flag.Int("outputs", 0, "random circuit: primary outputs (default derived)")
	locality := flag.Float64("locality", 2.0, "random circuit: reconvergence locality (window ≈ locality·log2 n)")
	seed := flag.Int64("seed", 1, "generator seed")
	family := flag.String("family", "", "structured family: ripple, cla, mult, alu, parity, decoder, mux, cmp, cell1d, cell2d, tree")
	n := flag.Int("n", 8, "family size parameter")
	m := flag.Int("m", 0, "family second parameter (cell2d columns, tree depth)")
	format := flag.String("format", "bench", "output format: bench or blif")
	out := flag.String("o", "", "output file (default stdout)")
	doDecomp := flag.Bool("decompose", false, "tech-decompose to ≤3-input AND/OR before writing")
	flag.Parse()

	var c *logic.Circuit
	switch {
	case *family != "":
		var err error
		if c, err = buildFamily(*family, *n, *m); err != nil {
			fail(err)
		}
	case *gates > 0:
		in := *inputs
		if in == 0 {
			in = 8 + *gates/20
		}
		c = gen.Random(gen.RandomParams{
			Inputs: in, Gates: *gates, Outputs: *outputs,
			Locality: *locality, Seed: *seed,
		})
	default:
		fail(fmt.Errorf("either -gates or -family is required"))
	}

	if *doDecomp {
		var err error
		if c, err = decomp.Decompose(c, 3); err != nil {
			fail(err)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "bench":
		err = bench.Write(w, c)
	case "blif":
		err = blif.Write(w, c)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "circgen: wrote %s\n", c)
}

func buildFamily(family string, n, m int) (*logic.Circuit, error) {
	switch family {
	case "ripple":
		return gen.RippleAdder(n), nil
	case "cla":
		return gen.CarryLookaheadAdder(n), nil
	case "mult":
		return gen.ArrayMultiplier(n), nil
	case "alu":
		return gen.ALU(n), nil
	case "parity":
		return gen.ParityTree(n), nil
	case "decoder":
		return gen.Decoder(n), nil
	case "mux":
		return gen.MuxTree(n), nil
	case "cmp":
		return gen.Comparator(n), nil
	case "cell1d":
		return gen.CellularArray1D(n), nil
	case "cell2d":
		if m <= 0 {
			m = n
		}
		return gen.CellularArray2D(n, m), nil
	case "tree":
		if m <= 0 {
			m = 3
		}
		return gen.KaryTree(n, m), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "circgen:", err)
	os.Exit(1)
}
