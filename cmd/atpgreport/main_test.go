package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/obs"
)

// runObserved produces a real effort log + span trace in memory.
func runObserved(t *testing.T) (atpg.EffortHeader, []atpg.EffortRecord, []obs.SpanRecord) {
	t.Helper()
	c := gen.ArrayMultiplier(4)
	var effort, trace bytes.Buffer
	log := atpg.NewEffortLog(&effort)
	tr := obs.NewTrace(&trace)
	eng := &atpg.Engine{Workers: 2}
	// RPT off: on a circuit this small random patterns detect everything,
	// and the report's interesting sections need solver-decided faults.
	if _, err := eng.Run(context.Background(), c, atpg.RunOptions{
		Collapse: true, DropDetected: true, Incremental: true,
		EffortLog: log,
		Telemetry: &atpg.Telemetry{Trace: tr, Spans: obs.NewTracer(tr)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	hdr, recs, err := atpg.DecodeEffortLog(&effort)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := readSpans(&trace)
	if err != nil {
		t.Fatal(err)
	}
	return hdr, recs, spans
}

func TestBuildReport(t *testing.T) {
	hdr, recs, spans := runObserved(t)
	rep := buildReport(hdr, recs, spans, 5, 6)

	if rep.Circuit != hdr.Circuit || rep.Faults != hdr.Faults {
		t.Errorf("report header %q/%d, want %q/%d", rep.Circuit, rep.Faults, hdr.Circuit, hdr.Faults)
	}
	if rep.SolverFaults == 0 {
		t.Fatal("no solver-decided faults in the report")
	}
	wantFeats := []string{"cone_size", "cone_depth", "gates", "cc0", "cc1", "co"}
	if len(rep.Correlations) != len(wantFeats) {
		t.Fatalf("%d correlations, want %d", len(rep.Correlations), len(wantFeats))
	}
	seen := map[string]bool{}
	for _, corr := range rep.Correlations {
		seen[corr.Feature] = true
		if corr.N != rep.SolverFaults {
			t.Errorf("correlation %s over %d faults, want %d", corr.Feature, corr.N, rep.SolverFaults)
		}
		if corr.Spearman < -1.0001 || corr.Spearman > 1.0001 {
			t.Errorf("spearman(%s) = %v out of range", corr.Feature, corr.Spearman)
		}
	}
	for _, f := range wantFeats {
		if !seen[f] {
			t.Errorf("feature %s missing from correlations", f)
		}
	}
	if rep.WallsSource != "spans" {
		t.Errorf("walls source %q with a trace supplied", rep.WallsSource)
	}
	if len(rep.Top) == 0 || len(rep.Top) > 5 {
		t.Fatalf("top list has %d entries", len(rep.Top))
	}
	for i := 1; i < len(rep.Top); i++ {
		if rep.Top[i].Effort > rep.Top[i-1].Effort {
			t.Errorf("top list not sorted: %d before %d", rep.Top[i-1].Effort, rep.Top[i].Effort)
		}
	}
	chained := false
	for _, tf := range rep.Top {
		if strings.Contains(tf.Chain, "fault") {
			chained = true
		}
	}
	if !chained {
		t.Error("no top fault resolved a span chain")
	}
	ir := rep.Incremental
	if ir == nil {
		t.Fatal("incremental run produced no reuse section")
	}
	if ir.GroupedFaults == 0 || ir.Groups == 0 || ir.MeanGroupSize < 1 {
		t.Errorf("reuse section shape: %+v", ir)
	}
	if ir.GroupedFaults > rep.SolverFaults {
		t.Errorf("grouped %d > solver-decided %d", ir.GroupedFaults, rep.SolverFaults)
	}
	if ir.Spearman < -1.0001 || ir.Spearman > 1.0001 {
		t.Errorf("reuse spearman %v out of range", ir.Spearman)
	}
}

func TestIncrementalSectionAbsentForFreshRun(t *testing.T) {
	hdr := atpg.EffortHeader{Kind: "header", Schema: atpg.EffortSchema, Circuit: "fresh", Faults: 2}
	recs := []atpg.EffortRecord{
		{Kind: "fault", Fault: "a/0", Phase: "sweep", Status: "detected", Effort: 5},
		{Kind: "fault", Fault: "b/1", Phase: "sweep", Status: "untestable", Effort: 9},
	}
	rep := buildReport(hdr, recs, nil, 3, 4)
	if rep.Incremental != nil {
		t.Errorf("fresh-per-fault log grew a reuse section: %+v", rep.Incremental)
	}
	if strings.Contains(rep.Markdown(), "Incremental reuse") {
		t.Error("markdown renders a reuse section for a fresh run")
	}
}

func TestMarkdownRender(t *testing.T) {
	hdr, recs, spans := runObserved(t)
	md := buildReport(hdr, recs, spans, 5, 6).Markdown()
	for _, want := range []string{
		"# ATPG effort report",
		"rank correlation",
		"cone_size", "gates", "cc0", "co",
		"Per-phase wall time (from spans)",
		"most expensive faults",
		"Incremental reuse vs effort",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

// TestRouterAccuracySection: a routed run's log must grow the router
// section — every decided fault joined (clean drops included), classes
// and backends tallied, Spearman in range, confusion rows in class-cost
// order — and an unrouted log must not.
func TestRouterAccuracySection(t *testing.T) {
	c := gen.ArrayMultiplier(4)
	var effort bytes.Buffer
	log := atpg.NewEffortLog(&effort)
	eng := &atpg.Engine{Workers: 2}
	sum, err := eng.Run(context.Background(), c, atpg.RunOptions{
		Collapse: true, DropDetected: true, Incremental: true, Route: true,
		EffortLog: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	hdr, recs, err := atpg.DecodeEffortLog(&effort)
	if err != nil {
		t.Fatal(err)
	}
	rep := buildReport(hdr, recs, nil, 5, 6)
	ra := rep.Router
	if ra == nil {
		t.Fatal("routed log produced no router section")
	}
	if ra.Faults != sum.Total {
		t.Errorf("router joined %d faults, run decided %d", ra.Faults, sum.Total)
	}
	classTotal, backendTotal := 0, 0
	for _, n := range ra.Classes {
		classTotal += n
	}
	for _, n := range ra.Backends {
		backendTotal += n
	}
	if classTotal != ra.Faults || backendTotal != ra.Faults {
		t.Errorf("tallies: classes %d, backends %d, want %d", classTotal, backendTotal, ra.Faults)
	}
	if ra.Spearman < -1.0001 || ra.Spearman > 1.0001 {
		t.Errorf("router spearman %v out of range", ra.Spearman)
	}
	if ra.Agreement < 0 || ra.Agreement > 1 {
		t.Errorf("agreement %v out of range", ra.Agreement)
	}
	if len(ra.Confusion) == 0 {
		t.Fatal("no confusion rows")
	}
	rowTotal := 0
	for i, row := range ra.Confusion {
		if ra.Classes[row.Class] == 0 {
			t.Errorf("confusion row %q for a class with no faults", row.Class)
		}
		for _, n := range row.Bands {
			rowTotal += n
		}
		if i > 0 && classOrdinals[row.Class] <= classOrdinals[ra.Confusion[i-1].Class] {
			t.Errorf("confusion rows out of class order: %q after %q", row.Class, ra.Confusion[i-1].Class)
		}
	}
	if rowTotal != ra.Faults {
		t.Errorf("confusion rows cover %d faults, want %d", rowTotal, ra.Faults)
	}
	md := rep.Markdown()
	for _, want := range []string{"Router accuracy", "rank correlation of predicted class"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}

	// Unrouted logs must not grow the section.
	unrouted, urecs, _ := runObserved(t)
	if rep := buildReport(unrouted, urecs, nil, 5, 6); rep.Router != nil {
		t.Errorf("unrouted log grew a router section: %+v", rep.Router)
	}
}

func TestRecordsFallbackAndJSON(t *testing.T) {
	hdr, recs, _ := runObserved(t)
	rep := buildReport(hdr, recs, nil, 3, 4)
	if rep.WallsSource != "records" {
		t.Errorf("walls source %q without a trace", rep.WallsSource)
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.Circuit != rep.Circuit || len(back.Correlations) != len(rep.Correlations) {
		t.Errorf("JSON round-trip lost data: %+v", back)
	}
}

func TestBuildReportEmpty(t *testing.T) {
	// A log with a header and no records (everything RPT-dropped before
	// any solve) must still render without panicking.
	hdr := atpg.EffortHeader{Kind: "header", Schema: atpg.EffortSchema, Circuit: "empty", Faults: 0}
	rep := buildReport(hdr, nil, nil, 5, 4)
	md := rep.Markdown()
	if !strings.Contains(md, "rank correlation") {
		t.Error("empty report dropped the correlation section")
	}
}
