// Command atpgreport turns a run's per-fault effort log (and optionally
// its trace) into the paper's predicted-vs-actual analysis: which cheap
// structural features — fanout-cone size, sub-circuit gate count, SCOAP,
// estimated cut-width — actually predicted where the solver spent its
// search, phase by phase. It is the reporting half of the effort
// observatory: the engine streams atpgeasy/effort/v1 records, this
// command joins, bins, rank-correlates and fits them. For routed runs it
// also scores the portfolio router: how well the predicted effort
// classes ranked the observed search effort (the "Router accuracy"
// section).
//
// Usage:
//
//	atpgreport -log effort.jsonl [-trace trace.jsonl]
//	           [-format markdown|json] [-top N] [-bins N]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/fit"
	"atpgeasy/internal/obs"
	"atpgeasy/internal/stats"
)

func main() {
	logPath := flag.String("log", "", "effort log (JSONL, schema atpgeasy/effort/v1; required)")
	tracePath := flag.String("trace", "", "trace file with span records (optional; enables span-based phase walls and top-k span chains)")
	format := flag.String("format", "markdown", "output format: markdown or json")
	top := flag.Int("top", 10, "number of most expensive faults to list")
	bins := flag.Int("bins", 8, "bins for the feature-vs-effort tables")
	flag.Parse()

	if *logPath == "" {
		fail(fmt.Errorf("-log is required"))
	}
	f, err := os.Open(*logPath)
	if err != nil {
		fail(err)
	}
	hdr, recs, err := atpg.DecodeEffortLog(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	var spans []obs.SpanRecord
	if *tracePath != "" {
		tf, err := os.Open(*tracePath)
		if err != nil {
			fail(err)
		}
		spans, err = readSpans(tf)
		tf.Close()
		if err != nil {
			fail(err)
		}
	}

	rep := buildReport(hdr, recs, spans, *top, *bins)
	switch *format {
	case "markdown":
		os.Stdout.WriteString(rep.Markdown())
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown -format %q (want markdown or json)", *format))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atpgreport:", err)
	os.Exit(1)
}

// readSpans extracts the "kind":"span" records from a JSONL trace,
// skipping the engine's fault/faultsim events interleaved in the same
// stream.
func readSpans(r io.Reader) ([]obs.SpanRecord, error) {
	var spans []obs.SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || !bytes.Contains(line, []byte(`"kind":"span"`)) {
			continue
		}
		var sp obs.SpanRecord
		if err := json.Unmarshal(line, &sp); err != nil {
			continue // tolerate a torn tail, like the effort decoder
		}
		if sp.Kind == "span" {
			spans = append(spans, sp)
		}
	}
	return spans, sc.Err()
}

// featureCol names one structural-feature column of the effort log.
type featureCol struct {
	Name string
	Get  func(atpg.FaultFeatures) int32
}

// featureCols returns the feature columns to analyze; cut_width only
// when the log was recorded with width extraction on.
func featureCols(width bool) []featureCol {
	cols := []featureCol{
		{"cone_size", func(f atpg.FaultFeatures) int32 { return f.ConeSize }},
		{"cone_depth", func(f atpg.FaultFeatures) int32 { return f.ConeDepth }},
		{"gates", func(f atpg.FaultFeatures) int32 { return f.Gates }},
		{"cc0", func(f atpg.FaultFeatures) int32 { return f.CC0 }},
		{"cc1", func(f atpg.FaultFeatures) int32 { return f.CC1 }},
		{"co", func(f atpg.FaultFeatures) int32 { return f.CO }},
	}
	if width {
		cols = append(cols, featureCol{"cut_width", func(f atpg.FaultFeatures) int32 { return f.CutWidth }})
	}
	return cols
}

// Report is the full analysis, renderable as markdown or JSON.
type Report struct {
	Circuit string `json:"circuit"`
	Faults  int    `json:"faults"`
	Workers int    `json:"workers"`
	Records int    `json:"records"`
	Width   bool   `json:"width"`

	// PhaseCounts counts verdict records per pipeline phase; Wasted the
	// discarded speculative solves on top.
	PhaseCounts map[string]int `json:"phase_counts"`
	Statuses    map[string]int `json:"statuses"`
	Wasted      int            `json:"wasted"`

	// PhaseWalls is the per-phase wall-time breakdown. With a trace it
	// comes from the run's spans (rpt/sweep/retry-tier plus the stall and
	// flush intervals inside them); without one it falls back to the
	// solver time summed from the records themselves.
	PhaseWalls  []PhaseWall `json:"phase_walls"`
	WallsSource string      `json:"walls_source"` // "spans" or "records"

	// Correlations is the headline table: Spearman rank correlation of
	// each structural feature against observed solver effort, over the
	// faults that actually reached the solver.
	Correlations []Correlation `json:"correlations"`
	SolverFaults int           `json:"solver_faults"`

	// Binned is one feature-vs-effort table per feature (Figure 1 as
	// tables: mean/max solver effort per feature bin).
	Binned []BinnedFeature `json:"binned"`

	// BestFit is the winning curve family per feature fitted to
	// effort-vs-feature (predicted vs actual), with its R².
	BestFit []FitRow `json:"best_fit"`

	// Top lists the most expensive faults by solver effort, with their
	// span chains when a trace was supplied.
	Top []TopFault `json:"top"`

	// Incremental summarizes region-grouped incremental solving when the
	// log carries group records: how much learned-clause reuse the groups
	// achieved and how reuse relates to search effort. Nil for a
	// fresh-per-fault run.
	Incremental *IncrementalReuse `json:"incremental,omitempty"`

	// Router scores the routed portfolio's effort predictions against the
	// observed outcomes when the log carries predicted_class fields. Nil
	// for an unrouted run.
	Router *RouterAccuracy `json:"router,omitempty"`
}

type PhaseWall struct {
	Phase string        `json:"phase"`
	Wall  time.Duration `json:"wall_ns"`
	Spans int           `json:"spans,omitempty"`
}

type Correlation struct {
	Feature  string  `json:"feature"`
	Spearman float64 `json:"spearman"`
	N        int     `json:"n"`
}

type BinnedFeature struct {
	Feature string      `json:"feature"`
	Bins    []stats.Bin `json:"bins"`
}

type FitRow struct {
	Feature string  `json:"feature"`
	Curve   string  `json:"curve"`
	R2      float64 `json:"r2"`
}

type TopFault struct {
	Fault   string        `json:"fault"`
	Status  string        `json:"status"`
	Phase   string        `json:"phase"`
	Tier    int           `json:"tier,omitempty"`
	Effort  int64         `json:"effort"`
	SolveNS time.Duration `json:"solve_ns"`
	Reused  int64         `json:"reused,omitempty"`
	Chain   string        `json:"chain,omitempty"`
}

// IncrementalReuse is the report's incremental-solving section: group
// shape, aggregate learned-clause reuse, and reuse-vs-effort tables over
// the grouped solver-decided faults.
type IncrementalReuse struct {
	GroupedFaults int     `json:"grouped_faults"`
	Groups        int     `json:"groups"`
	MeanGroupSize float64 `json:"mean_group_size"`
	LearnedReused int64   `json:"learned_reused"`
	// Spearman rank-correlates per-fault learned-clause reuse against
	// search effort: strongly positive means the hard faults are exactly
	// the ones leaning on their region neighbors' clauses.
	Spearman float64     `json:"spearman"`
	Bins     []stats.Bin `json:"bins,omitempty"`
}

// solverPhases marks the phases whose records carry real solver search
// counters; RPT detections and wasted speculative solves are excluded
// from the correlation series so zero-effort rows don't drown the signal.
func isSolverPhase(p string) bool {
	return p == "sweep" || p == "retry" || p == "resume"
}

func buildReport(hdr atpg.EffortHeader, recs []atpg.EffortRecord, spans []obs.SpanRecord, top, bins int) *Report {
	rep := &Report{
		Circuit: hdr.Circuit, Faults: hdr.Faults, Workers: hdr.Workers,
		Records: len(recs), Width: hdr.Width,
		PhaseCounts: map[string]int{}, Statuses: map[string]int{},
	}

	var solver []atpg.EffortRecord
	for _, r := range recs {
		if r.Phase == "dropped" {
			// Routed runs also record the clean fault-sim drops (Wasted
			// false, zero solver work); only the discarded speculative
			// solves count as waste.
			if r.Wasted {
				rep.Wasted++
			} else {
				rep.PhaseCounts[r.Phase]++
				rep.Statuses[r.Status]++
			}
			continue
		}
		rep.PhaseCounts[r.Phase]++
		rep.Statuses[r.Status]++
		if isSolverPhase(r.Phase) {
			solver = append(solver, r)
		}
	}
	rep.SolverFaults = len(solver)

	rep.PhaseWalls, rep.WallsSource = phaseWalls(recs, spans)

	// Correlation + binned tables + fits over the solver-effort series.
	effort := make([]float64, len(solver))
	for i, r := range solver {
		effort[i] = float64(r.Effort)
	}
	cols := featureCols(hdr.Width)
	xs := make([]float64, len(solver))
	for _, col := range cols {
		for i, r := range solver {
			xs[i] = float64(col.Get(r.FaultFeatures))
		}
		rep.Correlations = append(rep.Correlations, Correlation{
			Feature: col.Name, Spearman: stats.Spearman(xs, effort), N: len(solver),
		})
		if len(solver) > 0 {
			rep.Binned = append(rep.Binned, BinnedFeature{
				Feature: col.Name,
				Bins:    stats.BinnedMeans(xs, effort, bins),
			})
		}
		if best := bestCurve(xs, effort); best != nil {
			rep.BestFit = append(rep.BestFit, FitRow{
				Feature: col.Name, Curve: best.String(), R2: best.R2,
			})
		}
	}
	// Most-negative-first would bury the headline; sort by |ρ| so the
	// strongest predictor leads the table.
	sort.SliceStable(rep.Correlations, func(a, b int) bool {
		return math.Abs(rep.Correlations[a].Spearman) > math.Abs(rep.Correlations[b].Spearman)
	})

	rep.Top = topFaults(solver, spans, top)
	rep.Incremental = incrementalReuse(solver, bins)
	rep.Router = routerAccuracy(recs)
	return rep
}

// RouterAccuracy is the report's router-accuracy section: did the
// portfolio's cut-width-guided effort classes actually rank the faults
// by how much search they cost? Built from the predicted_class/backend
// columns of a routed run's records.
type RouterAccuracy struct {
	Faults   int            `json:"faults"`
	Classes  map[string]int `json:"classes"`
	Backends map[string]int `json:"backends"`
	// Spearman rank-correlates the predicted class ordinal
	// (trivial=0 … hard=3) against observed search effort over every
	// decided fault — the single-number router-accuracy verdict.
	Spearman float64 `json:"spearman"`
	// Agreement is the confusion diagonal: the fraction of faults whose
	// effort-quartile band equals their predicted class ordinal.
	Agreement float64        `json:"agreement"`
	Confusion []ConfusionRow `json:"confusion"`
}

// ConfusionRow is one predicted class's distribution over the observed
// effort-quartile bands (cheapest quartile first).
type ConfusionRow struct {
	Class      string  `json:"class"`
	Bands      [4]int  `json:"bands"`
	MeanEffort float64 `json:"mean_effort"`
}

// classOrdinals maps the router's class names to their cost order; the
// names are the String values of atpg.EffortClass.
var classOrdinals = map[string]int{"trivial": 0, "low-width": 1, "structural": 2, "hard": 3}

// routerAccuracy joins predicted effort classes with observed effort, or
// nil when the log is from an unrouted run. Wasted speculative solves
// are excluded (the committing record carries the fault's real outcome);
// clean drops are included at zero effort — the router deliberately
// schedules the trivial class last so drops land there for free, and the
// join must score that choice too.
func routerAccuracy(recs []atpg.EffortRecord) *RouterAccuracy {
	var routed []atpg.EffortRecord
	for _, r := range recs {
		if r.PredictedClass != "" && !r.Wasted {
			routed = append(routed, r)
		}
	}
	if len(routed) == 0 {
		return nil
	}
	ra := &RouterAccuracy{Faults: len(routed), Classes: map[string]int{}, Backends: map[string]int{}}
	ord := make([]float64, len(routed))
	eff := make([]float64, len(routed))
	for i, r := range routed {
		ra.Classes[r.PredictedClass]++
		if r.Backend != "" {
			ra.Backends[r.Backend]++
		}
		ord[i] = float64(classOrdinals[r.PredictedClass])
		eff[i] = float64(r.Effort)
	}
	ra.Spearman = stats.Spearman(ord, eff)

	// Quartile thresholds over the observed efforts; ties break toward
	// the cheaper band, so an all-zero quartile stays in band 0.
	sorted := append([]float64(nil), eff...)
	sort.Float64s(sorted)
	n := len(sorted)
	q1, q2, q3 := sorted[(n-1)/4], sorted[(n-1)/2], sorted[3*(n-1)/4]
	band := func(e float64) int {
		switch {
		case e <= q1:
			return 0
		case e <= q2:
			return 1
		case e <= q3:
			return 2
		default:
			return 3
		}
	}

	rows := map[string]*ConfusionRow{}
	diag := 0
	for i, r := range routed {
		row, ok := rows[r.PredictedClass]
		if !ok {
			row = &ConfusionRow{Class: r.PredictedClass}
			rows[r.PredictedClass] = row
		}
		b := band(eff[i])
		row.Bands[b]++
		row.MeanEffort += eff[i]
		if b == int(ord[i]) {
			diag++
		}
	}
	ra.Agreement = float64(diag) / float64(len(routed))
	// Rows in class-cost order, cheapest predicted class first.
	names := make([]string, 0, len(rows))
	for cls, row := range rows {
		names = append(names, cls)
		row.MeanEffort /= float64(ra.Classes[cls])
	}
	sort.Slice(names, func(a, b int) bool { return classOrdinals[names[a]] < classOrdinals[names[b]] })
	for _, cls := range names {
		ra.Confusion = append(ra.Confusion, *rows[cls])
	}
	return ra
}

// incrementalReuse aggregates the grouped records' reuse-vs-effort
// relationship, or nil when the run was fresh-per-fault.
func incrementalReuse(solver []atpg.EffortRecord, bins int) *IncrementalReuse {
	var grouped []atpg.EffortRecord
	groups := map[int]bool{}
	for _, r := range solver {
		if r.Group > 0 {
			grouped = append(grouped, r)
			groups[r.Group] = true
		}
	}
	if len(grouped) == 0 {
		return nil
	}
	ir := &IncrementalReuse{GroupedFaults: len(grouped), Groups: len(groups)}
	var sizeSum int64
	reuse := make([]float64, len(grouped))
	effort := make([]float64, len(grouped))
	for i, r := range grouped {
		sizeSum += int64(r.GroupSize)
		ir.LearnedReused += r.LearnedReused
		reuse[i] = float64(r.LearnedReused)
		effort[i] = float64(r.Effort)
	}
	ir.MeanGroupSize = float64(sizeSum) / float64(len(grouped))
	ir.Spearman = stats.Spearman(reuse, effort)
	ir.Bins = stats.BinnedMeans(reuse, effort, bins)
	return ir
}

// bestCurve returns the highest-R² curve family for ys over xs, or nil
// when nothing fits (constant series, too few points).
func bestCurve(xs, ys []float64) *fit.Curve {
	curves := fit.Best(xs, ys)
	var best *fit.Curve
	for i := range curves {
		if !math.IsNaN(curves[i].R2) && (best == nil || curves[i].R2 > best.R2) {
			best = &curves[i]
		}
	}
	return best
}

// phaseWalls prefers span durations (real wall intervals, stalls and
// flushes included) and falls back to per-record solver+build time.
func phaseWalls(recs []atpg.EffortRecord, spans []obs.SpanRecord) ([]PhaseWall, string) {
	if len(spans) > 0 {
		agg := map[string]*PhaseWall{}
		order := []string{}
		for _, sp := range spans {
			switch sp.Name {
			case "run", "rpt", "sweep", "retry-tier", "frontier-stall", "flush", "rpt-batch", "rpt-compact", "checkpoint":
				w, ok := agg[sp.Name]
				if !ok {
					w = &PhaseWall{Phase: sp.Name}
					agg[sp.Name] = w
					order = append(order, sp.Name)
				}
				w.Wall += time.Duration(sp.DurNS)
				w.Spans++
			}
		}
		walls := make([]PhaseWall, 0, len(order))
		for _, n := range order {
			walls = append(walls, *agg[n])
		}
		sort.SliceStable(walls, func(a, b int) bool { return walls[a].Wall > walls[b].Wall })
		return walls, "spans"
	}
	agg := map[string]time.Duration{}
	for _, r := range recs {
		agg[r.Phase] += time.Duration(r.BuildNS + r.SolveNS)
	}
	walls := make([]PhaseWall, 0, len(agg))
	for p, w := range agg {
		walls = append(walls, PhaseWall{Phase: p, Wall: w})
	}
	sort.SliceStable(walls, func(a, b int) bool { return walls[a].Wall > walls[b].Wall })
	return walls, "records"
}

// topFaults lists the k highest-effort solver records; with spans, each
// gets its ancestry chain (run → sweep → dispatch-chunk → fault).
func topFaults(solver []atpg.EffortRecord, spans []obs.SpanRecord, k int) []TopFault {
	byEffort := append([]atpg.EffortRecord(nil), solver...)
	sort.SliceStable(byEffort, func(a, b int) bool { return byEffort[a].Effort > byEffort[b].Effort })
	if k > len(byEffort) {
		k = len(byEffort)
	}
	byID := map[uint64]obs.SpanRecord{}
	faultSpan := map[string]obs.SpanRecord{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		if sp.Name == "fault" && sp.Detail != "" {
			faultSpan[sp.Detail] = sp
		}
	}
	out := make([]TopFault, 0, k)
	for _, r := range byEffort[:k] {
		tf := TopFault{
			Fault: r.Fault, Status: r.Status, Phase: r.Phase, Tier: r.Tier,
			Effort: r.Effort, SolveNS: time.Duration(r.SolveNS),
			Reused: r.LearnedReused,
		}
		if sp, ok := faultSpan[r.Fault]; ok {
			var chain []string
			for ok && len(chain) < 8 {
				chain = append(chain, sp.Name)
				sp, ok = byID[sp.Parent]
			}
			for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
				chain[l], chain[r] = chain[r], chain[l]
			}
			tf.Chain = strings.Join(chain, " > ")
		}
		out = append(out, tf)
	}
	return out
}

// Markdown renders the report for humans (and the CI grep).
func (rep *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# ATPG effort report: %s\n\n", rep.Circuit)
	fmt.Fprintf(&b, "- faults: %d, records: %d, workers: %d, cut-width extraction: %v\n",
		rep.Faults, rep.Records, rep.Workers, rep.Width)
	fmt.Fprintf(&b, "- phases: %s\n", countLine(rep.PhaseCounts))
	fmt.Fprintf(&b, "- statuses: %s\n", countLine(rep.Statuses))
	fmt.Fprintf(&b, "- wasted speculative solves: %d\n\n", rep.Wasted)

	fmt.Fprintf(&b, "## Per-phase wall time (from %s)\n\n", rep.WallsSource)
	fmt.Fprintf(&b, "| phase | wall | spans |\n|---|---|---|\n")
	for _, w := range rep.PhaseWalls {
		fmt.Fprintf(&b, "| %s | %v | %d |\n", w.Phase, w.Wall.Round(time.Microsecond), w.Spans)
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "## Feature vs solver effort: rank correlation\n\n")
	fmt.Fprintf(&b, "Spearman rank correlation of each structural feature against the\nobserved search effort of the %d solver-decided faults.\n\n", rep.SolverFaults)
	fmt.Fprintf(&b, "| feature | spearman | n |\n|---|---|---|\n")
	for _, c := range rep.Correlations {
		fmt.Fprintf(&b, "| %s | %+.3f | %d |\n", c.Feature, c.Spearman, c.N)
	}
	b.WriteByte('\n')

	for _, bf := range rep.Binned {
		fmt.Fprintf(&b, "## Effort vs %s (binned)\n\n", bf.Feature)
		fmt.Fprintf(&b, "| %s | faults | mean effort | max effort |\n|---|---|---|---|\n", bf.Feature)
		for _, bin := range bf.Bins {
			if bin.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "| %.0f–%.0f | %d | %.1f | %.0f |\n", bin.XLo, bin.XHi, bin.Count, bin.MeanY, bin.MaxY)
		}
		b.WriteByte('\n')
	}

	if len(rep.BestFit) > 0 {
		fmt.Fprintf(&b, "## Predicted vs actual: best-fit curves\n\n")
		fmt.Fprintf(&b, "| feature | best fit | R² |\n|---|---|---|\n")
		for _, f := range rep.BestFit {
			fmt.Fprintf(&b, "| %s | %s | %.4f |\n", f.Feature, f.Curve, f.R2)
		}
		b.WriteByte('\n')
	}

	if len(rep.Top) > 0 {
		fmt.Fprintf(&b, "## Top %d most expensive faults\n\n", len(rep.Top))
		fmt.Fprintf(&b, "| fault | status | phase | tier | effort | solve | reused | span chain |\n|---|---|---|---|---|---|---|---|\n")
		for _, t := range rep.Top {
			fmt.Fprintf(&b, "| %s | %s | %s | %d | %d | %v | %d | %s |\n",
				t.Fault, t.Status, t.Phase, t.Tier, t.Effort, t.SolveNS.Round(time.Microsecond), t.Reused, t.Chain)
		}
		b.WriteByte('\n')
	}

	if ir := rep.Incremental; ir != nil {
		fmt.Fprintf(&b, "## Incremental reuse vs effort\n\n")
		fmt.Fprintf(&b, "%d faults solved in %d region groups (mean size %.1f); %d learned clauses reused in conflict analysis. Spearman(reuse, effort) = %+.3f.\n\n",
			ir.GroupedFaults, ir.Groups, ir.MeanGroupSize, ir.LearnedReused, ir.Spearman)
		fmt.Fprintf(&b, "| learned reused | faults | mean effort | max effort |\n|---|---|---|---|\n")
		for _, bin := range ir.Bins {
			if bin.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "| %.0f–%.0f | %d | %.1f | %.0f |\n", bin.XLo, bin.XHi, bin.Count, bin.MeanY, bin.MaxY)
		}
		b.WriteByte('\n')
	}

	if ra := rep.Router; ra != nil {
		fmt.Fprintf(&b, "## Router accuracy\n\n")
		fmt.Fprintf(&b, "%d routed faults — predicted classes: %s; backends: %s.\n",
			ra.Faults, countLine(ra.Classes), countLine(ra.Backends))
		fmt.Fprintf(&b, "Spearman rank correlation of predicted class (ordinal) vs observed effort: %+.3f. Effort-quartile agreement: %.1f%%.\n\n",
			ra.Spearman, 100*ra.Agreement)
		fmt.Fprintf(&b, "| predicted class | q1 (cheap) | q2 | q3 | q4 (costly) | mean effort |\n|---|---|---|---|---|---|\n")
		for _, row := range ra.Confusion {
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %.1f |\n",
				row.Class, row.Bands[0], row.Bands[1], row.Bands[2], row.Bands[3], row.MeanEffort)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// countLine renders a count map deterministically (descending count,
// then name).
func countLine(m map[string]int) string {
	if len(m) == 0 {
		return "none"
	}
	type kv struct {
		k string
		v int
	}
	kvs := make([]kv, 0, len(m))
	for k, v := range m {
		kvs = append(kvs, kv{k, v})
	}
	sort.Slice(kvs, func(a, b int) bool {
		if kvs[a].v != kvs[b].v {
			return kvs[a].v > kvs[b].v
		}
		return kvs[a].k < kvs[b].k
	})
	parts := make([]string, len(kvs))
	for i, e := range kvs {
		parts[i] = fmt.Sprintf("%s %d", e.k, e.v)
	}
	return strings.Join(parts, ", ")
}
