package main

import (
	"strings"
	"testing"

	"atpgeasy/internal/experiments"
)

func TestDispatchSingle(t *testing.T) {
	cfg := experiments.Config{Quick: true, Seed: 3}
	var sb strings.Builder
	if err := dispatch(&sb, cfg, "worked", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Formula 4.1") {
		t.Error("worked output incomplete")
	}
}

func TestDispatchList(t *testing.T) {
	cfg := experiments.Config{Quick: true, Seed: 3}
	var sb strings.Builder
	if err := dispatch(&sb, cfg, "worked,qhorn", ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Formula 4.1") || !strings.Contains(out, "q-horn") {
		t.Error("combined output incomplete")
	}
}

func TestDispatchCSV(t *testing.T) {
	cfg := experiments.Config{Quick: true, Seed: 3, MaxFaultsPerCircuit: 4}
	dir := t.TempDir()
	var sb strings.Builder
	if err := dispatch(&sb, cfg, "fig8b", dir); err != nil {
		t.Fatal(err)
	}
}

func TestDispatchUnknown(t *testing.T) {
	var sb strings.Builder
	if err := dispatch(&sb, experiments.Config{Quick: true}, "bogus", ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}
