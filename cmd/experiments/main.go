// Command experiments regenerates the evaluation of "Why is ATPG Easy?"
// (DAC 1999): every figure of the paper plus the ablation studies listed
// in DESIGN.md. Results print as text tables/ASCII plots; -csv also dumps
// the raw scatter data.
//
// Usage:
//
//	experiments [-run all|fig1|fig8a|fig8b|gen|worked|qhorn|avgtime|bdd|ablation|collapse]
//	            [-quick] [-seed N] [-faults N] [-csv DIR] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"atpgeasy/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, fig1, fig8a, fig8b, gen, worked, qhorn, avgtime, bdd, ablation, collapse")
	quick := flag.Bool("quick", false, "run the reduced (seconds-scale) workloads")
	seed := flag.Int64("seed", 1999, "random seed for sampling and generation")
	faults := flag.Int("faults", 0, "max faults sampled per circuit (0 = experiment default)")
	csvDir := flag.String("csv", "", "directory to write raw CSV data into")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	cfg := experiments.Config{
		Quick:               *quick,
		Seed:                *seed,
		MaxFaultsPerCircuit: *faults,
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	if err := dispatch(os.Stdout, cfg, *run, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type csvWriter interface {
	WriteCSV(w io.Writer) error
}

func dispatch(out io.Writer, cfg experiments.Config, run, csvDir string) error {
	wanted := map[string]bool{}
	for _, name := range strings.Split(run, ",") {
		wanted[strings.TrimSpace(name)] = true
	}
	all := wanted["all"]
	did := false

	emit := func(name string, r experiments.Renderer, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := r.Render(out); err != nil {
			return err
		}
		if csvDir != "" {
			if cw, ok := r.(csvWriter); ok {
				f, err := os.Create(filepath.Join(csvDir, name+".csv"))
				if err != nil {
					return err
				}
				defer f.Close()
				if err := cw.WriteCSV(f); err != nil {
					return err
				}
			}
		}
		did = true
		return nil
	}

	if all || wanted["worked"] {
		r, err := experiments.WorkedExample(cfg)
		if err := emit("worked", r, err); err != nil {
			return err
		}
	}
	if all || wanted["fig1"] {
		r, err := experiments.Figure1(cfg)
		if err := emit("fig1", r, err); err != nil {
			return err
		}
	}
	if all || wanted["fig8a"] {
		r, err := experiments.Figure8(cfg, experiments.SuiteMCNC)
		if err := emit("fig8a", r, err); err != nil {
			return err
		}
	}
	if all || wanted["fig8b"] {
		r, err := experiments.Figure8(cfg, experiments.SuiteISCAS)
		if err := emit("fig8b", r, err); err != nil {
			return err
		}
	}
	if all || wanted["gen"] {
		r, err := experiments.GeneratedStudy(cfg)
		if err := emit("gen523", r, err); err != nil {
			return err
		}
	}
	if all || wanted["qhorn"] {
		r, err := experiments.QHornStudy(cfg)
		if err := emit("qhorn", r, err); err != nil {
			return err
		}
	}
	if all || wanted["avgtime"] {
		r, err := experiments.AvgTimeStudy(cfg)
		if err := emit("avgtime", r, err); err != nil {
			return err
		}
	}
	if all || wanted["bdd"] {
		r, err := experiments.BDDStudy(cfg)
		if err := emit("bdd", r, err); err != nil {
			return err
		}
	}
	if all || wanted["ablation"] {
		r, err := experiments.CachingAblation(cfg)
		if err := emit("ablation", r, err); err != nil {
			return err
		}
	}
	if all || wanted["collapse"] {
		r, err := experiments.CollapsingAblation(cfg)
		if err := emit("collapse", r, err); err != nil {
			return err
		}
	}
	if !did {
		return fmt.Errorf("unknown experiment %q", run)
	}
	return nil
}
