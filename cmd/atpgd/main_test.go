package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"atpgeasy/internal/bench"
	"atpgeasy/internal/gen"
)

// buildDaemon compiles the atpgd binary once per test binary run.
var (
	daemonOnce sync.Once
	daemonPath string
	daemonErr  error
)

func buildDaemon(t *testing.T) string {
	t.Helper()
	daemonOnce.Do(func() {
		dir, err := os.MkdirTemp("", "atpgd-bin-*")
		if err != nil {
			daemonErr = err
			return
		}
		daemonPath = filepath.Join(dir, "atpgd")
		args := []string{"build"}
		if raceEnabled {
			args = append(args, "-race")
		}
		args = append(args, "-o", daemonPath, ".")
		if out, err := exec.Command("go", args...).CombinedOutput(); err != nil {
			daemonErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if daemonErr != nil {
		t.Fatal(daemonErr)
	}
	return daemonPath
}

// startDaemon launches atpgd on a fresh port against dataDir and waits
// for it to answer /healthz. The caller owns the process.
func startDaemon(t *testing.T, dataDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	bin := buildDaemon(t)
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-data", dataDir,
	}, extra...)
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start atpgd: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(addrFile)
		if err == nil && len(bytes.TrimSpace(data)) > 0 {
			addr := string(bytes.TrimSpace(data))
			if resp, err := http.Get("http://" + addr + "/healthz"); err == nil {
				resp.Body.Close()
				return cmd, addr
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("atpgd never became healthy; stderr:\n%s", stderr.String())
	return nil, ""
}

// jobView is the slice of GET /jobs/{id} these tests care about.
type jobView struct {
	State    string `json:"state"`
	Error    string `json:"error"`
	Progress *struct {
		Done int `json:"done"`
	} `json:"progress"`
	Result *struct {
		Coverage float64  `json:"coverage"`
		Detected int      `json:"detected"`
		Vectors  []string `json:"vectors"`
		Resumed  int      `json:"resumed"`
	} `json:"result"`
}

func getJobView(t *testing.T, addr, id string) jobView {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return v
}

func submitNetlist(t *testing.T, addr, name, netlist string) string {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/jobs?name="+name, "text/plain", strings.NewReader(netlist))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var meta struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	return meta.ID
}

func waitDone(t *testing.T, addr, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		v := getJobView(t, addr, id)
		switch v.State {
		case "done":
			return v
		case "failed", "canceled":
			t.Fatalf("job %s reached %q (error %q)", id, v.State, v.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobView{}
}

// chaosNetlist is a random circuit big enough that a kill lands mid-run.
func chaosNetlist(t *testing.T) string {
	t.Helper()
	c := gen.Random(gen.RandomParams{Inputs: 24, Gates: 700, Seed: 11})
	var buf bytes.Buffer
	if err := bench.Write(&buf, c); err != nil {
		t.Fatalf("bench.Write: %v", err)
	}
	return buf.String()
}

// TestDaemonKillNineMidJobResumes is the end-to-end crash contract at
// the process level: SIGKILL the daemon mid-job, restart it on the same
// data dir, and the finished job must match an uninterrupted run
// vector-for-vector.
func TestDaemonKillNineMidJobResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	netlist := chaosNetlist(t)

	// Baseline: uninterrupted daemon run.
	cmdA, addrA := startDaemon(t, t.TempDir())
	baseID := submitNetlist(t, addrA, "chaos", netlist)
	base := waitDone(t, addrA, baseID)
	cmdA.Process.Kill()
	cmdA.Wait()
	if base.Result == nil || len(base.Result.Vectors) == 0 {
		t.Fatal("baseline produced no vectors")
	}

	// Interrupted: SIGKILL mid-run — no drain, no journal close, nothing.
	dataDir := t.TempDir()
	cmdB, addrB := startDaemon(t, dataDir)
	id := submitNetlist(t, addrB, "chaos", netlist)
	killDeadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(killDeadline) {
			t.Fatal("job never got far enough to kill")
		}
		v := getJobView(t, addrB, id)
		if v.State == "done" {
			t.Fatal("job finished before the kill — enlarge the chaos circuit")
		}
		if v.State == "running" && v.Progress != nil && v.Progress.Done >= 3 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmdB.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	cmdB.Wait()

	// Restart on the same data dir: the job must resume and finish with
	// the baseline's exact vector set.
	_, addrC := startDaemon(t, dataDir)
	resumed := waitDone(t, addrC, id)
	if !reflect.DeepEqual(resumed.Result.Vectors, base.Result.Vectors) {
		t.Fatalf("resumed vectors diverge: %d vs baseline %d",
			len(resumed.Result.Vectors), len(base.Result.Vectors))
	}
	if resumed.Result.Coverage != base.Result.Coverage {
		t.Fatalf("resumed coverage %v, baseline %v", resumed.Result.Coverage, base.Result.Coverage)
	}
	if resumed.Result.Detected != base.Result.Detected {
		t.Fatalf("resumed detected %d, baseline %d", resumed.Result.Detected, base.Result.Detected)
	}
}

// TestDaemonSIGTERMDrains: SIGTERM must exit 0 after a clean drain.
func TestDaemonSIGTERMDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	cmd, addr := startDaemon(t, t.TempDir(), "-drain-timeout", "60s")
	id := submitNetlist(t, addr, "c17", loadBench)
	waitDone(t, addr, id)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("atpgd exited with %v after SIGTERM", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("atpgd did not exit after SIGTERM")
	}
}

// TestDaemonLoadMode drives a -chaos daemon with the built-in load
// harness: mixed priorities, poison jobs, malformed and oversized
// submissions, slow SSE readers — the client exits 0 only if every
// submission landed in its required state.
func TestDaemonLoadMode(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	_, addr := startDaemon(t, t.TempDir(), "-chaos", "-slots", "2", "-queue-cap", "4")
	out, err := exec.Command(buildDaemon(t), "-load", "-addr", addr,
		"-load-jobs", "18", "-load-clients", "6",
		"-load-poison", "0.15", "-load-garbage", "0.2").CombinedOutput()
	if err != nil {
		t.Fatalf("load run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "all submissions landed in their required states") {
		t.Fatalf("load run did not verify states:\n%s", out)
	}
	t.Logf("load summary:\n%s", out)
}
