// Command atpgd runs the ATPG engine as a crash-safe, multi-tenant
// HTTP/JSON daemon. Netlists (.bench or BLIF) are submitted over HTTP,
// validated behind the parsers' recover barriers and the admission size
// caps, queued on a bounded priority queue and run through the
// deterministic engine with every final verdict journaled — a kill -9
// of the daemon loses nothing: queued jobs re-enqueue on restart and
// interrupted jobs resume byte-identically from their checkpoint
// journals.
//
// Usage:
//
//	atpgd -data DIR [-addr HOST:PORT] [-queue-cap N] [-slots N]
//	      [-j WORKERS] [-max-bytes N] [-max-line N]
//	      [-drain-timeout DUR] [-addr-file FILE] [-chaos]
//	atpgd -load [-addr HOST:PORT] [-load-jobs N] [-load-clients N]
//	      [-load-poison F] [-load-garbage F]
//
// API:
//
//	POST   /jobs?name=N&format=bench|blif&priority=high|normal|low
//	            [&budget=DUR][&deadline=DUR]    submit (body = netlist)
//	GET    /jobs                                list jobs
//	GET    /jobs/{id}                           meta + progress + result
//	GET    /jobs/{id}/events                    SSE progress stream
//	GET    /jobs/{id}/vectors                   test vectors, one per line
//	DELETE /jobs/{id}                           cancel / remove
//	GET    /healthz /readyz /metrics            liveness, drain state, Prometheus
//
// A full queue answers 429 with Retry-After. SIGTERM/SIGINT starts a
// graceful drain: admissions stop, the running jobs get -drain-timeout
// to finish, and past it they are checkpointed for the next start; a
// second signal hard-stops immediately (journals are flushed per
// record, so even that loses no decided verdict).
//
// -chaos arms the fault-injection hook: any job whose name contains
// "chaos-panic" panics its runner mid-job, which must burn only that
// job. -load turns the binary into a load/chaos client driving a
// running daemon; see the -load-* flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"atpgeasy/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8343", "listen address (serve) or daemon address (-load)")
	dataDir := flag.String("data", "", "durable data directory (required to serve)")
	queueCap := flag.Int("queue-cap", 64, "admission queue capacity (full queue = 429)")
	slots := flag.Int("slots", 1, "jobs running concurrently")
	workers := flag.Int("j", 0, "engine workers per job (0 = GOMAXPROCS)")
	maxBytes := flag.Int64("max-bytes", 8<<20, "max netlist size in bytes (over = 413)")
	maxLine := flag.Int("max-line", 1<<20, "max netlist line length in bytes (over = 413)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline for running jobs on SIGTERM")
	addrFile := flag.String("addr-file", "", "write the bound listen address to this file (useful with :0)")
	chaos := flag.Bool("chaos", false, "arm the fault-injection hook: jobs named *chaos-panic* panic their runner (testing only)")

	load := flag.Bool("load", false, "run as a load/chaos client against -addr instead of serving")
	loadJobs := flag.Int("load-jobs", 32, "-load: jobs to submit")
	loadClients := flag.Int("load-clients", 4, "-load: concurrent submitting clients")
	loadPoison := flag.Float64("load-poison", 0.1, "-load: fraction of jobs named chaos-panic-* (daemon must run -chaos to act on them)")
	loadGarbage := flag.Float64("load-garbage", 0.2, "-load: fraction of malformed/oversized submissions (must be rejected 4xx)")
	flag.Parse()

	if *load {
		if err := runLoad(*addr, *loadJobs, *loadClients, *loadPoison, *loadGarbage); err != nil {
			fmt.Fprintf(os.Stderr, "atpgd: load: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "atpgd: -data DIR is required (the durable job store)")
		os.Exit(2)
	}
	cfg := serve.Config{
		Addr:            *addr,
		DataDir:         *dataDir,
		QueueCap:        *queueCap,
		RunningSlots:    *slots,
		EngineWorkers:   *workers,
		MaxNetlistBytes: *maxBytes,
		MaxNetlistLine:  *maxLine,
	}
	if *chaos {
		cfg.ChaosHook = func(name string) {
			if strings.Contains(name, "chaos-panic") {
				panic("chaos hook: injected worker panic for " + name)
			}
		}
	}
	s, err := serve.Start(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atpgd: %v\n", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(s.Addr()+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "atpgd: write -addr-file: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "atpgd: serving on http://%s (data in %s)\n", s.Addr(), *dataDir)

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigCh
	fmt.Fprintf(os.Stderr, "atpgd: %s: draining (running jobs get %s; signal again to hard-stop)\n", sig, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "atpgd: drain deadline hit — running jobs checkpointed for the next start (%v)\n", err)
		} else {
			fmt.Fprintln(os.Stderr, "atpgd: drained clean")
		}
	case sig = <-sigCh:
		fmt.Fprintf(os.Stderr, "atpgd: %s: hard stop\n", sig)
		s.Close()
	}
}
