//go:build race

package main

// raceEnabled mirrors the test binary's race detector into the atpgd
// binary the tests build: a race-built test run exercises a race-built
// daemon.
const raceEnabled = true
