package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// loadBench is the valid submission body: small enough that a load run
// is bounded by daemon mechanics, not SAT time.
const loadBench = `# ISCAS85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

// loadKind classifies one synthetic submission.
type loadKind int

const (
	kindValid  loadKind = iota // must reach done
	kindPoison                 // chaos-panic name: must fail alone (-chaos daemon)
	kindBad                    // malformed netlist: must be rejected 400
	kindHuge                   // oversized netlist: must be rejected 413
)

// loadStats tallies the run; every counter is an invariant the daemon
// must uphold under pressure.
type loadStats struct {
	done, failedPoison         atomic.Int64
	rejected400, rejected413   atomic.Int64
	backpressure429, retries   atomic.Int64
	unexpected                 atomic.Int64
	sseStreams, sseSlowStreams atomic.Int64
}

// runLoad drives a running daemon with a mixed workload: valid jobs
// across all priorities, poison jobs (worker panics under -chaos),
// malformed and oversized submissions, SSE watchers including
// deliberately slow readers — and verifies every submission lands in
// exactly the state it must. Backpressure (429) is honored and retried,
// never counted as a failure: shedding load IS the correct behavior.
func runLoad(addr string, jobs, clients int, poisonFrac, garbageFrac float64) error {
	base := "http://" + addr
	if resp, err := http.Get(base + "/readyz"); err != nil {
		return fmt.Errorf("daemon not reachable at %s: %w", addr, err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("daemon at %s not ready (status %d)", addr, resp.StatusCode)
		}
	}

	// Deterministic interleaved mix: the same flags always produce the
	// same workload.
	kinds := make([]loadKind, jobs)
	nPoison := int(poisonFrac * float64(jobs))
	nGarbage := int(garbageFrac * float64(jobs))
	for i := range kinds {
		mixed := (i*2654435761 + 97) % jobs
		switch {
		case mixed < nPoison:
			kinds[i] = kindPoison
		case mixed < nPoison+nGarbage:
			if mixed%2 == 0 {
				kinds[i] = kindBad
			} else {
				kinds[i] = kindHuge
			}
		}
	}

	var stats loadStats
	var wg sync.WaitGroup
	work := make(chan int)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				loadOne(base, i, kinds[i], &stats)
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	completed := stats.done.Load() + stats.failedPoison.Load()
	fmt.Printf("atpgd load: %d submissions in %s (%.1f completed jobs/s, %d clients)\n",
		jobs, wall.Round(time.Millisecond), float64(completed)/wall.Seconds(), clients)
	fmt.Printf("  done %d, poison-failed %d, rejected 400 %d, rejected 413 %d\n",
		stats.done.Load(), stats.failedPoison.Load(), stats.rejected400.Load(), stats.rejected413.Load())
	fmt.Printf("  backpressure: %d×429 absorbed over %d retries\n", stats.backpressure429.Load(), stats.retries.Load())
	fmt.Printf("  sse: %d streams (%d deliberately slow)\n", stats.sseStreams.Load(), stats.sseSlowStreams.Load())
	if n := stats.unexpected.Load(); n > 0 {
		return fmt.Errorf("%d submissions landed in an unexpected state", n)
	}
	fmt.Println("  all submissions landed in their required states")
	return nil
}

// loadOne pushes one submission through its full lifecycle and checks
// the outcome against what its kind requires.
func loadOne(base string, i int, kind loadKind, stats *loadStats) {
	name := fmt.Sprintf("load-%d", i)
	body := loadBench
	wantReject := 0
	switch kind {
	case kindPoison:
		name = fmt.Sprintf("chaos-panic-%d", i)
	case kindBad:
		body = "10 = FROB(1, 2)\n"
		wantReject = http.StatusBadRequest
	case kindHuge:
		body = loadBench + "# " + strings.Repeat("x", 9<<20) + "\n"
		wantReject = http.StatusRequestEntityTooLarge
	}
	priority := [...]string{"high", "normal", "low"}[i%3]

	var meta struct {
		ID string `json:"id"`
	}
	status := 0
	for attempt := 0; attempt < 50; attempt++ {
		resp, err := http.Post(
			fmt.Sprintf("%s/jobs?name=%s&priority=%s", base, name, priority),
			"text/plain", strings.NewReader(body))
		if err != nil {
			stats.unexpected.Add(1)
			fmt.Fprintf(os.Stderr, "atpgd load: %s: submit: %v\n", name, err)
			return
		}
		status = resp.StatusCode
		if status == http.StatusTooManyRequests {
			stats.backpressure429.Add(1)
			stats.retries.Add(1)
			wait := 100 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = min(time.Duration(ra)*time.Second, time.Second)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(wait)
			continue
		}
		if status == http.StatusCreated {
			json.NewDecoder(resp.Body).Decode(&meta)
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		resp.Body.Close()
		break
	}

	if wantReject != 0 {
		if status != wantReject {
			stats.unexpected.Add(1)
			fmt.Fprintf(os.Stderr, "atpgd load: %s: status %d, want %d\n", name, status, wantReject)
			return
		}
		if kind == kindBad {
			stats.rejected400.Add(1)
		} else {
			stats.rejected413.Add(1)
		}
		return
	}
	if status != http.StatusCreated || meta.ID == "" {
		stats.unexpected.Add(1)
		fmt.Fprintf(os.Stderr, "atpgd load: %s: submit status %d after retries\n", name, status)
		return
	}

	// Every third job watches its own SSE stream; every ninth reads it
	// deliberately slowly — a stalled consumer the daemon must tolerate.
	if i%3 == 0 {
		stats.sseStreams.Add(1)
		slow := i%9 == 0
		if slow {
			stats.sseSlowStreams.Add(1)
		}
		go watchSSE(base, meta.ID, slow)
	}

	state, jobErr := pollTerminal(base, meta.ID, 2*time.Minute)
	switch {
	case kind == kindValid && state == "done":
		stats.done.Add(1)
	case kind == kindPoison && state == "failed" && strings.Contains(jobErr, "panic"):
		stats.failedPoison.Add(1)
	case kind == kindPoison && state == "done":
		// Daemon running without -chaos: the poison name is inert.
		stats.done.Add(1)
	default:
		stats.unexpected.Add(1)
		fmt.Fprintf(os.Stderr, "atpgd load: %s: terminal state %q (error %q)\n", name, state, jobErr)
	}
}

// pollTerminal waits for the job's terminal state.
func pollTerminal(base, id string, timeout time.Duration) (state, jobErr string) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			return "unreachable", err.Error()
		}
		var doc struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&doc)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch doc.State {
		case "done", "failed", "canceled":
			return doc.State, doc.Error
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "timeout", ""
}

// watchSSE consumes a job's event stream; slow readers trickle to
// simulate a stalled consumer, then abandon the stream.
func watchSSE(base, id string, slow bool) {
	resp, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if !slow {
		io.Copy(io.Discard, resp.Body)
		return
	}
	buf := make([]byte, 1)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := resp.Body.Read(buf); err != nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}
