// Command cutwidth estimates circuit cut-width (Definition 4.1 of "Why is
// ATPG Easy?") by min-cut linear arrangement, and optionally produces the
// per-fault width profile of C_ψ^sub with the least-squares growth fits —
// the per-circuit slice of the paper's Figure 8.
//
// Usage:
//
//	cutwidth -bench FILE | -blif FILE [-profile] [-faults N]
//	         [-exact] [-restarts N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/bench"
	"atpgeasy/internal/blif"
	"atpgeasy/internal/core"
	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/mla"
	"atpgeasy/internal/partition"
	"atpgeasy/internal/stats"
)

func main() {
	benchFile := flag.String("bench", "", "read an ISCAS .bench netlist")
	blifFile := flag.String("blif", "", "read a BLIF model")
	profile := flag.Bool("profile", false, "also compute the per-fault C_ψ^sub width profile (Figure 8 slice)")
	faults := flag.Int("faults", 100, "max faults sampled for -profile")
	exact := flag.Bool("exact", false, "use the exact subset-DP MLA (≤ 22 nodes)")
	restarts := flag.Int("restarts", 4, "FM partitioner restarts")
	seed := flag.Int64("seed", 1, "partitioner seed")
	flag.Parse()

	c, err := load(*benchFile, *blifFile)
	if err != nil {
		fail(err)
	}
	fmt.Printf("circuit: %s\n", c)
	g := hypergraph.FromCircuit(c)
	opt := mla.Options{Partition: partition.Options{Restarts: *restarts, Seed: *seed}}

	if *exact {
		order, w, err := mla.ExactOrder(g)
		if err != nil {
			fail(err)
		}
		fmt.Printf("exact minimum cut-width: %d\n", w)
		fmt.Printf("witness ordering: %s\n", strings.Join(c.Names(order), " "))
	} else {
		w, order := mla.EstimateCutWidth(g, opt)
		profileLine, _ := g.CutProfile(order)
		fmt.Printf("estimated cut-width (recursive min-cut bisection): %d\n", w)
		maxShow := len(profileLine)
		if maxShow > 24 {
			maxShow = 24
		}
		fmt.Printf("cut profile (first %d gaps): %v\n", maxShow, profileLine[:maxShow])
		kfo := c.MaxFanout()
		if kfo < 1 {
			kfo = 1
		}
		fmt.Printf("Theorem 4.1 bound n·2^(2·k_fo·W) with n=%d, k_fo=%d: %.3g backtracking nodes\n",
			c.NumNodes(), kfo, core.Theorem41Bound(c.NumNodes(), kfo, w))
	}

	if *profile {
		fl := atpg.Collapse(c, atpg.AllFaults(c))
		if len(fl) > *faults {
			fl = fl[:*faults]
		}
		points, err := core.WidthProfile(c, fl, opt)
		if err != nil {
			fail(err)
		}
		cl, err := core.ClassifyWidthGrowth(points)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nper-fault width profile (%d faults):\n", len(points))
		xs := make([]float64, len(points))
		ys := make([]float64, len(points))
		for i, p := range points {
			xs[i] = float64(p.SubSize)
			ys[i] = float64(p.Width)
		}
		fmt.Print(stats.Scatter(xs, ys, 64, 12, "cut-width vs |C_ψ^sub|"))
		fmt.Println("growth fits (best first):")
		for _, cv := range cl.Curves {
			fmt.Printf("  %s\n", cv)
		}
		fmt.Printf("log-bounded-width verdict: %v\n", cl.LogBounded)
	}
}

func load(benchFile, blifFile string) (*logic.Circuit, error) {
	switch {
	case benchFile != "":
		f, err := os.Open(benchFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return bench.Read(f, strings.TrimSuffix(benchFile, ".bench"))
	case blifFile != "":
		f, err := os.Open(blifFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return blif.Read(f)
	default:
		return nil, fmt.Errorf("one of -bench or -blif is required")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cutwidth:", err)
	os.Exit(1)
}
