package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/bench"
	"atpgeasy/internal/sat"
)

func TestGenerate(t *testing.T) {
	cases := map[string]struct {
		inputs, outputs int
	}{
		"ripple4": {9, 5},
		"cla8":    {17, 9},
		"mult3":   {6, 6},
		"alu2":    {7, 3},
		"parity8": {8, 1},
		"dec3":    {3, 8},
		"mux2":    {6, 1},
		"cmp4":    {8, 3},
		"cell1d5": {11, 6},
		"tree2x3": {8, 1},
		"rand50":  {10, 0}, // outputs derived
	}
	for name, want := range cases {
		c, err := generate(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(c.Inputs) != want.inputs {
			t.Errorf("%s: %d inputs, want %d", name, len(c.Inputs), want.inputs)
		}
		if want.outputs > 0 && len(c.Outputs) != want.outputs {
			t.Errorf("%s: %d outputs, want %d", name, len(c.Outputs), want.outputs)
		}
	}
	for _, bad := range []string{"", "nope", "ripple", "tree2", "treeAxB", "mult0"} {
		if _, err := generate(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestLoadCircuit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bench")
	c, err := generate("ripple4")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.Write(f, c); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := loadCircuit(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Inputs) != len(c.Inputs) {
		t.Error("interface changed through file round trip")
	}
	if _, err := loadCircuit("", "", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadCircuit("/nonexistent.bench", "", ""); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildJSONSummary(t *testing.T) {
	sum := &atpg.Summary{
		Circuit:           "c",
		Total:             14,
		Detected:          6,
		Untestable:        1,
		Aborted:           1,
		DroppedByFaultSim: 2,
		DetectedByRPT:     4,
		RPTBatches:        3,
		RPTVectors:        5,
		Vectors:           make([][]bool, 11),
		Elapsed:           3 * time.Millisecond,
		WallElapsed:       2 * time.Millisecond,
		Phases: atpg.PhaseTimes{
			RPT:      250 * time.Microsecond,
			Build:    time.Millisecond,
			Solve:    3 * time.Millisecond,
			FaultSim: 500 * time.Microsecond,
		},
		SolverTotals: sat.Stats{Nodes: 42, Decisions: 7},
	}
	doc := buildJSONSummary(sum, "dpll", 4, 100*time.Millisecond, false)
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	// The documented schema: decode into a free-form map and check the
	// stable field names a scripting consumer would rely on.
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != summarySchema {
		t.Errorf("schema = %v", m["schema"])
	}
	faults, ok := m["faults"].(map[string]any)
	if !ok {
		t.Fatalf("faults = %T", m["faults"])
	}
	for field, want := range map[string]float64{
		"total": 14, "detected": 6, "detected_by_rpt": 4, "untestable": 1, "aborted": 1, "dropped_by_sim": 2,
	} {
		if faults[field] != want {
			t.Errorf("faults.%s = %v, want %v", field, faults[field], want)
		}
	}
	rpt, ok := m["rpt"].(map[string]any)
	if !ok {
		t.Fatalf("rpt = %T", m["rpt"])
	}
	if rpt["batches"] != float64(3) || rpt["vectors"] != float64(5) {
		t.Errorf("rpt = %v", rpt)
	}
	phases, ok := m["phases"].(map[string]any)
	if !ok {
		t.Fatalf("phases = %T", m["phases"])
	}
	if phases["rpt_ns"] != 2.5e5 || phases["build_ns"] != 1e6 || phases["solve_ns"] != 3e6 || phases["faultsim_ns"] != 5e5 {
		t.Errorf("phases = %v", phases)
	}
	if m["sat_time_ns"] != 3e6 || m["wall_ns"] != 2e6 {
		t.Errorf("times = %v / %v", m["sat_time_ns"], m["wall_ns"])
	}
	if m["budget_ns"] != 1e8 {
		t.Errorf("budget_ns = %v", m["budget_ns"])
	}
	if m["coverage"] != float64(sum.Coverage()) {
		t.Errorf("coverage = %v", m["coverage"])
	}
	st, ok := m["solver_totals"].(map[string]any)
	if !ok || st["nodes"] != float64(42) {
		t.Errorf("solver_totals = %v", m["solver_totals"])
	}
	if _, present := m["interrupted"]; present {
		t.Error("interrupted should be omitted when false")
	}
	if !strings.Contains(string(raw), `"workers":4`) {
		t.Errorf("workers missing: %s", raw)
	}
}

// TestSetupTelemetry: the flag wiring must produce a working telemetry
// bundle — a reachable metrics server, a trace file, a progress callback —
// and a close function that flushes everything.
func TestSetupTelemetry(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	tel, closeTel, err := setupTelemetry("127.0.0.1:0", tracePath, time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tel.Metrics == nil || tel.Trace == nil || tel.OnProgress == nil {
		t.Fatalf("incomplete telemetry: %+v", tel)
	}
	if err := tel.Trace.Emit(map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := closeTel(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"x":1`) {
		t.Errorf("trace file = %q", data)
	}

	// All flags off: no telemetry, close is a no-op.
	tel, closeTel, err = setupTelemetry("", "", 0, 2)
	if err != nil || tel != nil {
		t.Fatalf("tel = %v, err = %v", tel, err)
	}
	if err := closeTel(); err != nil {
		t.Fatal(err)
	}
}
