package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/bench"
	"atpgeasy/internal/checkpoint"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/sat"
	"atpgeasy/internal/serve"
)

func TestGenerate(t *testing.T) {
	cases := map[string]struct {
		inputs, outputs int
	}{
		"ripple4": {9, 5},
		"cla8":    {17, 9},
		"mult3":   {6, 6},
		"alu2":    {7, 3},
		"parity8": {8, 1},
		"dec3":    {3, 8},
		"mux2":    {6, 1},
		"cmp4":    {8, 3},
		"cell1d5": {11, 6},
		"tree2x3": {8, 1},
		"rand50":  {10, 0}, // outputs derived
	}
	for name, want := range cases {
		c, err := generate(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(c.Inputs) != want.inputs {
			t.Errorf("%s: %d inputs, want %d", name, len(c.Inputs), want.inputs)
		}
		if want.outputs > 0 && len(c.Outputs) != want.outputs {
			t.Errorf("%s: %d outputs, want %d", name, len(c.Outputs), want.outputs)
		}
	}
	for _, bad := range []string{"", "nope", "ripple", "tree2", "treeAxB", "mult0"} {
		if _, err := generate(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestLoadCircuit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bench")
	c, err := generate("ripple4")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.Write(f, c); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := loadCircuit(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Inputs) != len(c.Inputs) {
		t.Error("interface changed through file round trip")
	}
	if _, err := loadCircuit("", "", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadCircuit("/nonexistent.bench", "", ""); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildJSONSummary(t *testing.T) {
	sum := &atpg.Summary{
		Circuit:           "c",
		Total:             14,
		Detected:          6,
		Untestable:        1,
		Aborted:           1,
		Errors:            1,
		DroppedByFaultSim: 2,
		DetectedByRPT:     4,
		Retries: []atpg.RetryTier{
			{Tier: 1, Budget: 40 * time.Millisecond, Attempted: 2, Recovered: 1},
		},
		RPTBatches:  3,
		RPTVectors:  5,
		Vectors:     make([][]bool, 11),
		Elapsed:     3 * time.Millisecond,
		WallElapsed: 2 * time.Millisecond,
		Phases: atpg.PhaseTimes{
			RPT:      250 * time.Microsecond,
			Build:    time.Millisecond,
			Solve:    3 * time.Millisecond,
			FaultSim: 500 * time.Microsecond,
		},
		SolverTotals: sat.Stats{Nodes: 42, Decisions: 7},
	}
	doc := buildJSONSummary(sum, "dpll", 4, 100*time.Millisecond, true, 64, false)
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	// The documented schema: decode into a free-form map and check the
	// stable field names a scripting consumer would rely on.
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != summarySchema {
		t.Errorf("schema = %v", m["schema"])
	}
	faults, ok := m["faults"].(map[string]any)
	if !ok {
		t.Fatalf("faults = %T", m["faults"])
	}
	for field, want := range map[string]float64{
		"total": 14, "detected": 6, "detected_by_rpt": 4, "untestable": 1, "aborted": 1, "errors": 1, "dropped_by_sim": 2,
	} {
		if faults[field] != want {
			t.Errorf("faults.%s = %v, want %v", field, faults[field], want)
		}
	}
	rpt, ok := m["rpt"].(map[string]any)
	if !ok {
		t.Fatalf("rpt = %T", m["rpt"])
	}
	if rpt["batches"] != float64(3) || rpt["vectors"] != float64(5) {
		t.Errorf("rpt = %v", rpt)
	}
	phases, ok := m["phases"].(map[string]any)
	if !ok {
		t.Fatalf("phases = %T", m["phases"])
	}
	if phases["rpt_ns"] != 2.5e5 || phases["build_ns"] != 1e6 || phases["solve_ns"] != 3e6 || phases["faultsim_ns"] != 5e5 {
		t.Errorf("phases = %v", phases)
	}
	if m["sat_time_ns"] != 3e6 || m["wall_ns"] != 2e6 {
		t.Errorf("times = %v / %v", m["sat_time_ns"], m["wall_ns"])
	}
	if m["budget_ns"] != 1e8 {
		t.Errorf("budget_ns = %v", m["budget_ns"])
	}
	if m["coverage"] != float64(sum.Coverage()) {
		t.Errorf("coverage = %v", m["coverage"])
	}
	st, ok := m["solver_totals"].(map[string]any)
	if !ok || st["nodes"] != float64(42) {
		t.Errorf("solver_totals = %v", m["solver_totals"])
	}
	if _, present := m["interrupted"]; present {
		t.Error("interrupted should be omitted when false")
	}
	retries, ok := m["retries"].([]any)
	if !ok || len(retries) != 1 {
		t.Fatalf("retries = %v", m["retries"])
	}
	tier, ok := retries[0].(map[string]any)
	if !ok || tier["tier"] != float64(1) || tier["budget_ns"] != 4e7 ||
		tier["attempted"] != float64(2) || tier["recovered"] != float64(1) {
		t.Errorf("retries[0] = %v", retries[0])
	}
	if !strings.Contains(string(raw), `"workers":4`) {
		t.Errorf("workers missing: %s", raw)
	}
	if m["incremental"] != true || m["group_max"] != float64(64) {
		t.Errorf("incremental = %v, group_max = %v", m["incremental"], m["group_max"])
	}
}

// TestSetupTelemetry: the flag wiring must produce a working telemetry
// bundle — a reachable metrics server, a trace file, a progress callback —
// and a close function that flushes everything.
func TestSetupTelemetry(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	tel, closeTel, err := setupTelemetry("127.0.0.1:0", tracePath, time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tel.Metrics == nil || tel.Trace == nil || tel.OnProgress == nil {
		t.Fatalf("incomplete telemetry: %+v", tel)
	}
	if err := tel.Trace.Emit(map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := closeTel(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"x":1`) {
		t.Errorf("trace file = %q", data)
	}

	// All flags off: no telemetry, close is a no-op.
	tel, closeTel, err = setupTelemetry("", "", 0, 2)
	if err != nil || tel != nil {
		t.Fatalf("tel = %v, err = %v", tel, err)
	}
	if err := closeTel(); err != nil {
		t.Fatal(err)
	}
}

// TestResumeState: journal-to-engine conversion must validate indices,
// statuses and vector widths — journal content is external input even
// though the header hash makes honest mismatches unlikely.
func TestResumeState(t *testing.T) {
	c := gen.CarryLookaheadAdder(2)
	faults := atpg.Collapse(c, atpg.AllFaults(c))
	vec := strings.Repeat("1", len(c.Inputs))

	good := &checkpoint.State{
		RPT: &checkpoint.RPTState{Detected: []int{0, 2}, Vectors: []string{vec}, Batches: 3},
		Faults: map[int]checkpoint.FaultVerdict{
			1: {Status: "detected", Vector: vec},
			3: {Status: "untestable"},
			4: {Status: "error", Err: "panic: boom"},
		},
	}
	rs, err := serve.ResumeStateFrom(good, c, faults)
	if err != nil {
		t.Fatal(err)
	}
	if rs.RPT == nil || rs.RPT.Batches != 3 || len(rs.RPT.Vectors) != 1 {
		t.Fatalf("rpt = %+v", rs.RPT)
	}
	if len(rs.Faults) != 3 {
		t.Fatalf("faults = %+v", rs.Faults)
	}
	if r := rs.Faults[1]; r.Status != atpg.Detected || len(r.Vector) != len(c.Inputs) {
		t.Errorf("fault 1 = %+v", r)
	}
	if r := rs.Faults[4]; r.Status != atpg.Errored || r.Err != "panic: boom" {
		t.Errorf("fault 4 = %+v", r)
	}

	bad := []*checkpoint.State{
		{Faults: map[int]checkpoint.FaultVerdict{len(faults): {Status: "detected"}}},
		{Faults: map[int]checkpoint.FaultVerdict{0: {Status: "mystery"}}},
		{Faults: map[int]checkpoint.FaultVerdict{0: {Status: "detected", Vector: "10"}}},
		{RPT: &checkpoint.RPTState{Detected: []int{-1}}},
		{RPT: &checkpoint.RPTState{Vectors: []string{"01x"}}},
	}
	for i, st := range bad {
		if _, err := serve.ResumeStateFrom(st, c, faults); err == nil {
			t.Errorf("bad state %d accepted", i)
		}
	}
}

// buildCLI compiles the atpg binary once per test binary run, for the
// end-to-end process tests below.
var (
	cliOnce sync.Once
	cliPath string
	cliErr  error
)

func buildCLI(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		dir, err := os.MkdirTemp("", "atpg-cli-*")
		if err != nil {
			cliErr = err
			return
		}
		cliPath = filepath.Join(dir, "atpg")
		if out, err := exec.Command("go", "build", "-o", cliPath, ".").CombinedOutput(); err != nil {
			cliErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if cliErr != nil {
		t.Fatal(cliErr)
	}
	return cliPath
}

// TestCLITraceFlushOnInterrupt: a SIGINT-drained traced run must still
// produce a fully flushed JSONL trace and one parseable JSON summary —
// the regression the old code hit by exiting error paths before closing
// the trace sink.
func TestCLITraceFlushOnInterrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")

	// rand500 is random-pattern resistant: the run spends >1s in SAT
	// solving, so the signal lands mid-sweep with the trace mid-stream.
	cmd := exec.Command(bin, "-gen", "rand500", "-j", "2", "-rpt-batches", "4", "-trace", trace, "-json")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()

	var doc map[string]any
	if jerr := json.Unmarshal(stdout.Bytes(), &doc); jerr != nil {
		t.Fatalf("stdout is not one JSON document: %v\nstdout: %s\nstderr: %s", jerr, stdout.Bytes(), stderr.Bytes())
	}
	if doc["schema"] != summarySchema {
		t.Errorf("schema = %v", doc["schema"])
	}
	if err != nil {
		// Interrupted mid-run (the intended path): the summary must say so.
		if doc["interrupted"] != true {
			t.Errorf("exit error %v but summary not marked interrupted", err)
		}
	} else {
		t.Logf("run finished before the signal landed; trace checks still apply")
	}

	data, rerr := os.ReadFile(trace)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatalf("trace not fully flushed: %d bytes, trailing %q", len(data), data[len(data)-1:])
	}
	for i, line := range bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n")) {
		if !json.Valid(line) {
			t.Fatalf("trace line %d is not valid JSON: %q", i+1, line)
		}
	}
}

// TestCLICheckpointResume: a -resume of a completed journal must skip
// every decided fault and reproduce the original run's coverage and
// vector count exactly.
func TestCLICheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")

	run := func(extra ...string) (map[string]any, string) {
		args := append([]string{
			"-gen", "rand200", "-j", "2", "-drop=false", "-seed", "7",
			"-rpt-batches", "8", "-checkpoint", ckpt, "-json",
		}, extra...)
		cmd := exec.Command(bin, args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("atpg %v: %v\n%s", args, err, stderr.Bytes())
		}
		var doc map[string]any
		if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, stdout.Bytes())
		}
		return doc, stderr.String()
	}

	first, _ := run()
	journal, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(journal, []byte(`"kind":"fault"`)) {
		t.Fatal("journal holds no solver verdicts — circuit too easy for this test")
	}

	second, stderr := run("-resume")
	if !strings.Contains(stderr, "resuming") {
		t.Errorf("resume not reported on stderr: %s", stderr)
	}
	for _, field := range []string{"coverage", "vectors", "faults"} {
		if fmt.Sprint(first[field]) != fmt.Sprint(second[field]) {
			t.Errorf("%s differs across resume: %v vs %v", field, first[field], second[field])
		}
	}
}
