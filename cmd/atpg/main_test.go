package main

import (
	"os"
	"path/filepath"
	"testing"

	"atpgeasy/internal/bench"
)

func TestGenerate(t *testing.T) {
	cases := map[string]struct {
		inputs, outputs int
	}{
		"ripple4": {9, 5},
		"cla8":    {17, 9},
		"mult3":   {6, 6},
		"alu2":    {7, 3},
		"parity8": {8, 1},
		"dec3":    {3, 8},
		"mux2":    {6, 1},
		"cmp4":    {8, 3},
		"cell1d5": {11, 6},
		"tree2x3": {8, 1},
		"rand50":  {10, 0}, // outputs derived
	}
	for name, want := range cases {
		c, err := generate(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(c.Inputs) != want.inputs {
			t.Errorf("%s: %d inputs, want %d", name, len(c.Inputs), want.inputs)
		}
		if want.outputs > 0 && len(c.Outputs) != want.outputs {
			t.Errorf("%s: %d outputs, want %d", name, len(c.Outputs), want.outputs)
		}
	}
	for _, bad := range []string{"", "nope", "ripple", "tree2", "treeAxB", "mult0"} {
		if _, err := generate(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestLoadCircuit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bench")
	c, err := generate("ripple4")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.Write(f, c); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := loadCircuit(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Inputs) != len(c.Inputs) {
		t.Error("interface changed through file round trip")
	}
	if _, err := loadCircuit("", "", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadCircuit("/nonexistent.bench", "", ""); err == nil {
		t.Error("missing file accepted")
	}
}
