// Command atpg is the TEGUS-style SAT-based test pattern generator: it
// reads a combinational netlist (.bench or BLIF) or builds a generated
// circuit, runs ATPG over every (optionally collapsed) stuck-at fault, and
// reports coverage, test vectors and per-instance SAT statistics.
//
// Usage:
//
//	atpg -bench FILE | -blif FILE | -gen NAME
//	     [-collapse] [-dominance] [-drop] [-solver dpll|caching|simple]
//	     [-incremental] [-group-max N]
//	     [-route] [-route-width-max N] [-route-hard-scale F]
//	     [-podem-max-backtracks N]
//	     [-j WORKERS] [-budget DURATION] [-cache-limit BYTES]
//	     [-rpt-batches N] [-rpt-idle N] [-seed N]
//	     [-retry-tiers N] [-retry-backoff F] [-mem-soft-limit BYTES]
//	     [-checkpoint FILE] [-resume] [-checkpoint-sync] [-checkpoint-every DUR]
//	     [-metrics-addr ADDR] [-trace FILE] [-progress DUR] [-json]
//	     [-effort-log FILE] [-effort-width]
//	     [-decompose] [-vectors] [-dimacs DIR] [-v]
//
// Generated circuit names (NAME): ripple<N>, cla<N>, mult<N>, alu<N>,
// parity<N>, dec<N>, mux<SEL>, cmp<N>, cell1d<N>, tree<K>x<D>,
// rand<GATES>.
//
// The run opens with a random-pattern pre-phase (classic TEGUS flow): up
// to -rpt-batches batches of 64 seeded random patterns are fault-simulated
// against the whole fault list, keeping only patterns that detect a new
// fault; the SAT engine then targets just the random-pattern-resistant
// survivors. -rpt-batches 0 disables the phase, -rpt-idle stops it after
// that many consecutive unproductive batches, and -seed makes the whole
// run reproducible. -dominance adds dominance-based fault collapsing on
// top of -collapse equivalence collapsing.
//
// With the default dpll solver the engine runs incrementally: faults
// sharing a transitive-fanout region are grouped (at most -group-max per
// group), encoded once with per-fault activation literals, and solved on
// a persistent per-worker CDCL instance that keeps learned clauses alive
// across the group — same verdicts and vectors as fresh-per-fault
// solving, less repeated search. -incremental=false (or a non-dpll
// -solver) restores fresh-per-fault solving; -group-max 1 keeps the
// incremental core but gives every fault its own group.
//
// -route turns on cut-width-guided fault routing: every fault is scored
// from its sub-circuit structure (cone size, SCOAP testability, a
// bounded cut-width estimate) and dispatched to the backend predicted
// cheapest — trivial cones last so fault simulation drops them, bounded
// cut-width to the caching backtracker, mid-size cones to the PODEM
// structural engine (capped at -podem-max-backtracks backtracks, CDCL
// fallback past the cap), oversized or wide-and-large cones to the
// incremental CDCL core with its budget scaled by -route-hard-scale.
// -route-width-max bounds the sub-circuit size the router will refine
// with an MLA layout search when its cheap width bound is ambiguous.
// Routed runs report per-class and per-backend tallies and stay
// byte-identical at any -j; -route=false (the default) is the unrouted
// engine, untouched.
//
// Faults are dispatched to -j parallel workers (default: GOMAXPROCS);
// -budget bounds the SAT time per fault, reporting over-budget faults as
// aborted instead of stalling the run; -cache-limit bounds the caching
// solver's sub-formula table per worker (bytes, 0 = the 64 MiB default). Interrupting the run (SIGINT or
// SIGTERM) drains the workers and prints the partial results.
//
// Robustness: with -budget, faults that exhaust their budget enter a
// bounded retry queue re-run after the main sweep with geometrically
// escalating budgets (-retry-tiers tiers, ×-retry-backoff each); a fault
// is reported aborted only after the final tier. -checkpoint journals
// every final verdict to an append-only JSONL file (flushed per record,
// fsynced per record with -checkpoint-sync, and every -checkpoint-every
// besides), so a killed run resumes with -resume: decided faults are
// skipped and the random-pattern pre-phase is replayed from the journal,
// reproducing the uninterrupted run's vector set. -mem-soft-limit arms a
// heap watchdog that shrinks the per-worker solver caches under memory
// pressure instead of growing toward an OOM kill.
//
// Observability: -metrics-addr serves Prometheus-text /metrics,
// /debug/vars and net/http/pprof for the duration of the run; -trace
// writes one JSONL event per fault (and per fault-simulation flush);
// -progress prints a live progress line (faults done, coverage, ETA) to
// stderr on the given period; -json replaces the human summary on stdout
// with a machine-readable JSON document (schema atpgeasy/run-summary/v1,
// documented in README.md). With -trace, the event stream also carries
// hierarchical spans (run → phase → dispatch chunk/RPT batch/retry tier →
// fault). -effort-log streams one structured record per fault verdict —
// structural features joined with solver effort, schema
// atpgeasy/effort/v1 — for cmd/atpgreport; -effort-width additionally
// estimates each fault's sub-circuit cut-width (slower: one MLA layout
// per fault). A crash or interrupt dumps the engine's flight-recorder
// ring (most recent dispatch/solve/commit events) to stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/bench"
	"atpgeasy/internal/blif"
	"atpgeasy/internal/checkpoint"
	"atpgeasy/internal/decomp"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/obs"
	"atpgeasy/internal/sat"
	"atpgeasy/internal/serve"
)

// dpllMaxConflicts bounds the CLI's DPLL solver so no fault can search
// forever — the analogue of the 50M-node cap on the backtracking solvers.
// -budget tightens this further in wall-clock terms.
const dpllMaxConflicts = 10_000_000

func main() {
	benchFile := flag.String("bench", "", "read an ISCAS .bench netlist")
	blifFile := flag.String("blif", "", "read a BLIF model")
	genName := flag.String("gen", "", "build a generated circuit (see -h)")
	collapse := flag.Bool("collapse", true, "apply structural fault collapsing (gate-local equivalence)")
	dominance := flag.Bool("dominance", true, "additionally apply dominance-based fault collapsing")
	drop := flag.Bool("drop", true, "drop faults detected by earlier vectors (fault simulation)")
	rptBatches := flag.Int("rpt-batches", atpg.DefaultRPTBatches, "random-pattern pre-phase: max 64-pattern batches (0 = disable)")
	rptIdle := flag.Int("rpt-idle", atpg.DefaultRPTIdleStop, "stop the pre-phase after this many consecutive batches detecting nothing new")
	seed := flag.Int64("seed", 1, "random-pattern generator seed (same seed = same run)")
	solver := flag.String("solver", "dpll", "SAT engine: dpll, caching or simple")
	incremental := flag.Bool("incremental", true, "region-grouped incremental solving: keep learned clauses alive across a fanout region's faults (dpll solver only)")
	groupMax := flag.Int("group-max", atpg.DefaultGroupMax, "max faults per region group in incremental mode (1 = fresh instance per fault)")
	route := flag.Bool("route", false, "cut-width-guided fault routing: dispatch each fault to the backend (podem, caching, cdcl, faultsim) its structure predicts cheapest")
	routeWidthMax := flag.Int("route-width-max", 0, "largest sub-circuit (nodes) the router refines with an MLA layout search (0 = default)")
	routeHardScale := flag.Float64("route-hard-scale", 0, "per-fault budget multiplier for hard-class faults (0 = default)")
	podemMaxBT := flag.Int64("podem-max-backtracks", 0, "PODEM backtrack cap before the deterministic CDCL fallback (0 = default, negative = unbounded)")
	workers := flag.Int("j", 0, "parallel fault workers (0 = GOMAXPROCS)")
	budget := flag.Duration("budget", 0, "per-fault SAT time budget (0 = none); over-budget faults abort")
	cacheLimit := flag.Int64("cache-limit", 0, "caching solver's sub-formula cache bound per worker, in bytes (0 = 64 MiB default)")
	retryTiers := flag.Int("retry-tiers", atpg.DefaultRetryTiers, "escalation tiers re-running over-budget faults with growing budgets (0 = no retries)")
	retryBackoff := flag.Float64("retry-backoff", atpg.DefaultRetryBackoff, "per-fault budget multiplier between retry tiers")
	memSoftLimit := flag.Int64("mem-soft-limit", 0, "soft heap limit in bytes: above it, worker solver caches are halved between faults (0 = off)")
	ckptPath := flag.String("checkpoint", "", "journal final fault verdicts to this JSONL file for crash recovery")
	resumeRun := flag.Bool("resume", false, "replay the -checkpoint journal, skipping faults it already decided")
	ckptSync := flag.Bool("checkpoint-sync", false, "fsync the checkpoint journal after every record (survives power loss, not just kill -9)")
	ckptEvery := flag.Duration("checkpoint-every", 5*time.Second, "periodic checkpoint fsync interval (0 = only on rotation and exit)")
	decompose := flag.Bool("decompose", true, "tech-decompose to ≤3-input AND/OR first (as TEGUS requires)")
	vectors := flag.Bool("vectors", false, "print the generated test vectors")
	dimacsDir := flag.String("dimacs", "", "dump every ATPG-SAT instance as DIMACS CNF into this directory")
	verbose := flag.Bool("v", false, "print per-fault results")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port for the duration of the run (port 0 picks one)")
	traceFile := flag.String("trace", "", "write a per-fault JSONL event trace (with hierarchical spans) to this file")
	effortLog := flag.String("effort-log", "", "stream per-fault effort records (features + solver effort, JSONL) to this file")
	effortWidth := flag.Bool("effort-width", false, "include estimated sub-circuit cut-width in effort records (runs the MLA heuristic per fault)")
	progressEvery := flag.Duration("progress", 0, "print a live progress line to stderr on this period (0 = off)")
	jsonOut := flag.Bool("json", false, "print a machine-readable JSON run summary to stdout (human report moves to stderr)")
	flag.Parse()

	// With -json, stdout carries exactly one JSON document; everything
	// human-readable moves to stderr.
	info := io.Writer(os.Stdout)
	if *jsonOut {
		info = os.Stderr
	}

	c, err := loadCircuit(*benchFile, *blifFile, *genName)
	if err != nil {
		fail(err)
	}
	if *decompose {
		if c, err = decomp.Decompose(c, 3); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(info, "circuit: %s (depth %d, max fanout %d)\n", c, c.Depth(), c.MaxFanout())

	// The collapsed fault list is computed here (not inside the engine) so
	// the checkpoint header can fingerprint its exact content.
	faults := atpg.AllFaults(c)
	if *collapse {
		faults = atpg.Collapse(c, faults)
	}
	if *dominance {
		faults = atpg.CollapseDominance(c, faults)
	}

	eng := &atpg.Engine{VerifyTests: true, Workers: *workers}
	switch *solver {
	case "dpll":
		eng.Solver = &sat.DPLL{MaxConflicts: dpllMaxConflicts}
	case "caching":
		eng.Solver = &sat.Caching{MaxNodes: 50_000_000, CacheLimit: *cacheLimit}
	case "simple":
		eng.Solver = &sat.Simple{MaxNodes: 50_000_000}
	default:
		fail(fmt.Errorf("unknown solver %q", *solver))
	}
	if *dimacsDir != "" {
		if err := dumpDIMACS(c, faults, *dimacsDir, info); err != nil {
			fail(err)
		}
	}

	effectiveWorkers := *workers
	if effectiveWorkers <= 0 {
		effectiveWorkers = runtime.GOMAXPROCS(0)
	}
	tel, closeTel, err := setupTelemetry(*metricsAddr, *traceFile, *progressEvery, effectiveWorkers)
	if err != nil {
		fail(err)
	}

	// The flight recorder is always on: it is a fixed-size ring, costs a
	// few atomics per event, and is the only record of the engine's recent
	// dispatch/solve/commit activity when a run is interrupted.
	ring := obs.NewRing(obs.DefaultRingSize)
	if tel == nil {
		tel = &atpg.Telemetry{}
	}
	tel.Ring = ring

	opt := atpg.RunOptions{
		DropDetected:       *drop,
		RPTBatches:         *rptBatches,
		RPTIdleStop:        *rptIdle,
		Seed:               *seed,
		PerFaultBudget:     *budget,
		Telemetry:          tel,
		CacheLimit:         *cacheLimit,
		RetryTiers:         *retryTiers,
		RetryBackoff:       *retryBackoff,
		MemSoftLimit:       *memSoftLimit,
		EffortWidth:        *effortWidth,
		Incremental:        *incremental,
		GroupMax:           *groupMax,
		Route:              *route,
		RouteWidthMax:      *routeWidthMax,
		RouteHardScale:     *routeHardScale,
		PodemMaxBacktracks: *podemMaxBT,
	}
	if *effortLog != "" {
		el, err := atpg.CreateEffortLog(*effortLog)
		if err != nil {
			fail(err)
		}
		opt.EffortLog = el
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var journal *checkpoint.Journal
	if *ckptPath != "" {
		journal, opt.Resume, err = openCheckpoint(*ckptPath, *resumeRun, c, faults, opt,
			checkpoint.Options{Sync: *ckptSync})
		if err != nil {
			fail(err)
		}
		opt.Journal = journal
		if opt.Resume != nil {
			fmt.Fprintf(info, "checkpoint: resuming %s — %d of %d faults already decided\n",
				*ckptPath, len(opt.Resume.Faults), len(faults))
		}
	}
	stopSyncer := startCheckpointSyncer(ctx, journal, *ckptEvery, tel.Spans)

	sum, err := eng.RunFaults(ctx, c, faults, opt)

	// Flush order matters on every exit path — including engine errors and
	// interrupts: the trace sink and the journal hold buffered records that
	// must reach disk before the process reports anything (or dies). The
	// old code called fail() on engine errors before closing the trace,
	// losing the tail of the event log.
	stopSyncer()
	telErr := closeTel()
	if journal != nil {
		if cerr := journal.Close(); cerr != nil {
			// A sticky journal write error degraded the run to
			// uncheckpointed; the results themselves are fine.
			fmt.Fprintf(os.Stderr, "atpg: checkpoint journal: %v\n", cerr)
		}
	}
	if opt.EffortLog != nil {
		if cerr := opt.EffortLog.Close(); cerr != nil {
			// Like the journal: a degraded effort log never fails the run.
			fmt.Fprintf(os.Stderr, "atpg: effort log: %v\n", cerr)
		} else {
			fmt.Fprintf(info, "effort log: %d records to %s\n", opt.EffortLog.Records()-1, *effortLog)
		}
	}
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fail(err)
	}
	if telErr != nil {
		fail(telErr)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "atpg: interrupted — partial results follow")
		ring.Dump(os.Stderr, 32)
	}
	if *verbose {
		for _, r := range sum.Results {
			fmt.Fprintf(info, "  %-20s %-11s %6d vars %8d clauses %10v\n",
				r.Fault.Name(c), r.Status, r.Vars, r.Clauses, r.Elapsed)
		}
	}
	fmt.Fprintf(info, "faults: %d  rpt-detected: %d  detected: %d  untestable: %d  aborted: %d  errors: %d  dropped-by-sim: %d\n",
		sum.Total, sum.DetectedByRPT, sum.Detected, sum.Untestable, sum.Aborted, sum.Errors, sum.DroppedByFaultSim)
	fmt.Fprintf(info, "rpt: %d batches, %d patterns kept, %d solver calls avoided\n",
		sum.RPTBatches, sum.RPTVectors, sum.DetectedByRPT)
	for _, rt := range sum.Retries {
		fmt.Fprintf(info, "retry tier %d: budget %v, attempted %d, recovered %d\n",
			rt.Tier, rt.Budget, rt.Attempted, rt.Recovered)
	}
	fmt.Fprintf(info, "fault coverage (testable): %.2f%%   vectors: %d   SAT time: %v   wall: %v\n",
		100*sum.Coverage(), len(sum.Vectors), sum.Elapsed, sum.WallElapsed.Round(time.Microsecond))
	fmt.Fprintf(info, "phases: rpt %v   build %v   solve %v   fault-sim %v\n",
		sum.Phases.RPT.Round(time.Microsecond),
		sum.Phases.Build.Round(time.Microsecond), sum.Phases.Solve.Round(time.Microsecond),
		sum.Phases.FaultSim.Round(time.Microsecond))
	if sum.SolverTotals.LearnedKept > 0 || sum.SolverTotals.LearnedReused > 0 {
		fmt.Fprintf(info, "incremental: learned clauses kept %d   reused %d   clause-db peak %d bytes\n",
			sum.SolverTotals.LearnedKept, sum.SolverTotals.LearnedReused, sum.SolverTotals.ClauseDBBytes)
	}
	if sum.Routed != nil {
		fmt.Fprintf(info, "routing: classes %s   backends %s\n",
			formatTally(sum.Routed.Classes), formatTally(sum.Routed.Backends))
	}
	if *jsonOut {
		doc := buildJSONSummary(sum, *solver, effectiveWorkers, *budget, *incremental, *groupMax, interrupted)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fail(err)
		}
	}
	if interrupted {
		os.Exit(1)
	}
	if *vectors {
		names := c.Names(c.Inputs)
		fmt.Fprintln(info, "test vectors (inputs:", strings.Join(names, ","), "):")
		for _, v := range sum.Vectors {
			bits := make([]byte, len(v))
			for i, b := range v {
				bits[i] = '0'
				if b {
					bits[i] = '1'
				}
			}
			fmt.Fprintf(info, "  %s\n", bits)
		}
	}
}

// setupTelemetry wires the -metrics-addr, -trace and -progress flags into
// an engine telemetry configuration. The returned close function flushes
// the trace and stops the metrics server; it is safe to call when all
// three flags are off (tel is then nil).
func setupTelemetry(metricsAddr, traceFile string, progressEvery time.Duration, workers int) (*atpg.Telemetry, func() error, error) {
	if metricsAddr == "" && traceFile == "" && progressEvery <= 0 {
		return nil, func() error { return nil }, nil
	}
	tel := &atpg.Telemetry{}
	var closers []func() error
	if metricsAddr != "" {
		reg := obs.NewRegistry()
		tel.Metrics = atpg.NewMetrics(reg, workers)
		srv, err := obs.Serve(metricsAddr, reg)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "atpg: metrics on http://%s/metrics (pprof on /debug/pprof/)\n", srv.Addr())
		closers = append(closers, func() error {
			// Let an in-flight scrape finish before the server goes away;
			// past the deadline Shutdown falls back to a hard Close itself.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			return srv.Shutdown(ctx)
		})
	}
	if traceFile != "" {
		tr, err := obs.CreateTrace(traceFile)
		if err != nil {
			return nil, nil, err
		}
		tel.Trace = tr
		tel.Spans = obs.NewTracer(tr)
		closers = append(closers, tr.Close)
	}
	if progressEvery > 0 {
		tel.ProgressEvery = progressEvery
		tel.OnProgress = func(p atpg.Progress) {
			fmt.Fprintf(os.Stderr, "atpg: %s\n", p)
		}
	}
	return tel, func() error {
		var first error
		for _, c := range closers {
			if err := c(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// runSummaryJSON is the -json output document. The schema field names the
// format version; see README.md ("Observability") for the field-by-field
// description.
type runSummaryJSON struct {
	Schema      string             `json:"schema"`
	Circuit     string             `json:"circuit"`
	Solver      string             `json:"solver"`
	Workers     int                `json:"workers"`
	Incremental bool               `json:"incremental,omitempty"`
	GroupMax    int                `json:"group_max,omitempty"`
	BudgetNS    int64              `json:"budget_ns,omitempty"`
	Faults      faultCountsJSON    `json:"faults"`
	Coverage    float64            `json:"coverage"`
	Vectors     int                `json:"vectors"`
	RPT         rptJSON            `json:"rpt"`
	Phases      atpg.PhaseTimes    `json:"phases"`
	SATTimeNS   int64              `json:"sat_time_ns"`
	WallNS      int64              `json:"wall_ns"`
	SolverStats sat.Stats          `json:"solver_totals"`
	Retries     []atpg.RetryTier   `json:"retries,omitempty"`
	Routed      *atpg.RouteSummary `json:"routed,omitempty"`
	Interrupted bool               `json:"interrupted,omitempty"`
}

type faultCountsJSON struct {
	Total         int `json:"total"`
	Detected      int `json:"detected"`
	DetectedByRPT int `json:"detected_by_rpt"`
	Untestable    int `json:"untestable"`
	Aborted       int `json:"aborted"`
	Errors        int `json:"errors"`
	Dropped       int `json:"dropped_by_sim"`
}

type rptJSON struct {
	Batches int `json:"batches"`
	Vectors int `json:"vectors"`
}

const summarySchema = "atpgeasy/run-summary/v1"

func buildJSONSummary(sum *atpg.Summary, solver string, workers int, budget time.Duration, incremental bool, groupMax int, interrupted bool) runSummaryJSON {
	return runSummaryJSON{
		Schema:      summarySchema,
		Circuit:     sum.Circuit,
		Solver:      solver,
		Workers:     workers,
		Incremental: incremental,
		GroupMax:    groupMax,
		BudgetNS: func() int64 {
			if budget > 0 {
				return budget.Nanoseconds()
			}
			return 0
		}(),
		Faults: faultCountsJSON{
			Total:         sum.Total,
			Detected:      sum.Detected,
			DetectedByRPT: sum.DetectedByRPT,
			Untestable:    sum.Untestable,
			Aborted:       sum.Aborted,
			Errors:        sum.Errors,
			Dropped:       sum.DroppedByFaultSim,
		},
		Coverage: sum.Coverage(),
		Vectors:  len(sum.Vectors),
		RPT: rptJSON{
			Batches: sum.RPTBatches,
			Vectors: sum.RPTVectors,
		},
		Phases:      sum.Phases,
		SATTimeNS:   sum.Elapsed.Nanoseconds(),
		WallNS:      sum.WallElapsed.Nanoseconds(),
		SolverStats: sum.SolverTotals,
		Retries:     sum.Retries,
		Routed:      sum.Routed,
		Interrupted: interrupted,
	}
}

// formatTally renders a name→count map with sorted keys, e.g.
// "podem:2414 cdcl:14" sorted by name for stable output.
func formatTally(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// openCheckpoint opens (or, with resume, continues) the journal at path
// via the shared serve.OpenJournal logic, adding the CLI's
// starting-fresh notice when a -resume finds no journal on disk.
func openCheckpoint(path string, resume bool, c *logic.Circuit, faults []atpg.Fault, opt atpg.RunOptions, copt checkpoint.Options) (*checkpoint.Journal, *atpg.ResumeState, error) {
	if resume {
		if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "atpg: -resume: no journal at %s, starting fresh\n", path)
		}
	}
	return serve.OpenJournal(path, resume, c, faults, opt, copt)
}

// startCheckpointSyncer fsyncs the journal on the given period and once
// more when ctx is cancelled (SIGINT/SIGTERM), so a signal-drained run's
// verdicts are durable even if the process is then killed hard. Each
// flush is traced as a top-level "checkpoint" span (nil tracer = no-op).
// The returned stop function waits for the goroutine to exit; it is a
// no-op without a journal.
func startCheckpointSyncer(ctx context.Context, j *checkpoint.Journal, every time.Duration, spans *obs.Tracer) func() {
	if j == nil {
		return func() {}
	}
	flush := func() {
		sp := spans.Start("checkpoint", obs.SpanContext{})
		j.Sync()
		sp.End()
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var tick <-chan time.Time
		if every > 0 {
			t := time.NewTicker(every)
			defer t.Stop()
			tick = t.C
		}
		for {
			select {
			case <-tick:
				flush()
			case <-ctx.Done():
				flush()
				return
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

func loadCircuit(benchFile, blifFile, genName string) (*logic.Circuit, error) {
	switch {
	case benchFile != "":
		f, err := os.Open(benchFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return bench.Read(f, strings.TrimSuffix(benchFile, ".bench"))
	case blifFile != "":
		f, err := os.Open(blifFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return blif.Read(f)
	case genName != "":
		return generate(genName)
	default:
		return nil, fmt.Errorf("one of -bench, -blif or -gen is required")
	}
}

// generate builds a named generator circuit, e.g. "ripple16" or "tree3x4".
func generate(name string) (*logic.Circuit, error) {
	num := func(prefix string) (int, bool) {
		if !strings.HasPrefix(name, prefix) {
			return 0, false
		}
		n, err := strconv.Atoi(name[len(prefix):])
		return n, err == nil && n > 0
	}
	if n, ok := num("ripple"); ok {
		return gen.RippleAdder(n), nil
	}
	if n, ok := num("cla"); ok {
		return gen.CarryLookaheadAdder(n), nil
	}
	if n, ok := num("mult"); ok {
		return gen.ArrayMultiplier(n), nil
	}
	if n, ok := num("alu"); ok {
		return gen.ALU(n), nil
	}
	if n, ok := num("parity"); ok {
		return gen.ParityTree(n), nil
	}
	if n, ok := num("dec"); ok {
		return gen.Decoder(n), nil
	}
	if n, ok := num("mux"); ok {
		return gen.MuxTree(n), nil
	}
	if n, ok := num("cmp"); ok {
		return gen.Comparator(n), nil
	}
	if n, ok := num("cell1d"); ok {
		return gen.CellularArray1D(n), nil
	}
	if n, ok := num("rand"); ok {
		return gen.Random(gen.RandomParams{Inputs: 8 + n/20, Gates: n, Seed: 1}), nil
	}
	if strings.HasPrefix(name, "tree") {
		parts := strings.SplitN(name[4:], "x", 2)
		if len(parts) == 2 {
			k, err1 := strconv.Atoi(parts[0])
			d, err2 := strconv.Atoi(parts[1])
			if err1 == nil && err2 == nil && k >= 2 && d >= 1 {
				return gen.KaryTree(k, d), nil
			}
		}
	}
	return nil, fmt.Errorf("unknown generator %q", name)
}

// dumpDIMACS writes one DIMACS CNF file per (collapsed) fault — the raw
// ATPG-SAT instances, for use with external SAT solvers.
func dumpDIMACS(c *logic.Circuit, faults []atpg.Fault, dir string, info io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := 0
	for _, f := range faults {
		m, err := atpg.NewMiter(c, f)
		if err == atpg.ErrUnobservable {
			continue
		}
		if err != nil {
			return err
		}
		formula, err := m.Encode()
		if err != nil {
			return err
		}
		name := strings.ReplaceAll(f.Name(c), "/", "_sa")
		out, err := os.Create(fmt.Sprintf("%s/%s.cnf", dir, name))
		if err != nil {
			return err
		}
		err = formula.WriteDIMACS(out)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		n++
	}
	fmt.Fprintf(info, "wrote %d DIMACS instances to %s\n", n, dir)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atpg:", err)
	os.Exit(1)
}
