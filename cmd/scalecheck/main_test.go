package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_atpg.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const fam = "BenchmarkParallelATPG"

func TestPassingFamily(t *testing.T) {
	path := writeBench(t, `[
		{"name": "BenchmarkParallelATPG/mult8/workers-1", "ns_per_op": 100e6, "workers": 1, "cpus": 4},
		{"name": "BenchmarkParallelATPG/mult8/workers-4", "ns_per_op": 40e6, "workers": 4, "cpus": 4}
	]`)
	var out strings.Builder
	if err := run(path, fam, 1.25, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2.50x") {
		t.Fatalf("expected recomputed 2.50x speedup in output, got:\n%s", out.String())
	}
}

func TestFailingFamily(t *testing.T) {
	// Flat scaling: workers-4 barely faster than workers-1. One healthy
	// family must not mask the regressed one.
	path := writeBench(t, `[
		{"name": "BenchmarkParallelATPG/mult8/workers-1", "ns_per_op": 100e6, "workers": 1, "cpus": 4},
		{"name": "BenchmarkParallelATPG/mult8/workers-4", "ns_per_op": 95e6, "workers": 4, "cpus": 4},
		{"name": "BenchmarkParallelATPG/cla32/workers-1", "ns_per_op": 100e6, "workers": 1, "cpus": 4},
		{"name": "BenchmarkParallelATPG/cla32/workers-4", "ns_per_op": 30e6, "workers": 4, "cpus": 4}
	]`)
	var out strings.Builder
	err := run(path, fam, 1.25, &out)
	if err == nil {
		t.Fatalf("expected failure for flat family, got pass:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "1 of 2") {
		t.Fatalf("expected '1 of 2 families' in error, got: %v", err)
	}
}

func TestSpeedupRecomputedFromNs(t *testing.T) {
	// A stale speedup_vs_workers1 field must be ignored: the gate trusts
	// only the raw ns/op.
	path := writeBench(t, `[
		{"name": "BenchmarkParallelATPG/mult8/workers-1", "ns_per_op": 100e6, "workers": 1, "cpus": 4},
		{"name": "BenchmarkParallelATPG/mult8/workers-4", "ns_per_op": 99e6, "workers": 4, "cpus": 4, "speedup_vs_workers1": 3.0}
	]`)
	if err := run(path, fam, 1.25, &strings.Builder{}); err == nil {
		t.Fatal("expected failure: stored speedup field should not override ns ratio")
	}
}

func TestSkipsSingleCPURows(t *testing.T) {
	path := writeBench(t, `[
		{"name": "BenchmarkParallelATPG/mult8/workers-1", "ns_per_op": 100e6, "workers": 1, "cpus": 1},
		{"name": "BenchmarkParallelATPG/mult8/workers-4", "ns_per_op": 120e6, "workers": 4, "cpus": 1}
	]`)
	var out strings.Builder
	if err := run(path, fam, 1.25, &out); err != nil {
		t.Fatalf("single-CPU rows must be skipped, not failed: %v", err)
	}
	if !strings.Contains(out.String(), "skip") {
		t.Fatalf("expected a skip note, got:\n%s", out.String())
	}
}

func TestIgnoresOtherWorkerCountsAndFamilies(t *testing.T) {
	// workers-2 rows and unrelated benchmarks must not form families.
	path := writeBench(t, `[
		{"name": "BenchmarkParallelATPG/mult8/workers-2", "ns_per_op": 60e6, "workers": 2, "cpus": 4},
		{"name": "BenchmarkTelemetryOverhead/off", "ns_per_op": 50e6, "workers": 4, "cpus": 4},
		{"name": "BenchmarkParallelATPG/mult8/workers-1", "ns_per_op": 100e6, "workers": 1, "cpus": 4},
		{"name": "BenchmarkParallelATPG/mult8/workers-4", "ns_per_op": 50e6, "workers": 4, "cpus": 4}
	]`)
	var out strings.Builder
	if err := run(path, fam, 1.25, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "TelemetryOverhead") {
		t.Fatalf("unrelated benchmark leaked into the gate:\n%s", out.String())
	}
}

func TestNoFamiliesIsAnError(t *testing.T) {
	path := writeBench(t, `[
		{"name": "BenchmarkCachingSolver/hashed", "ns_per_op": 1e6}
	]`)
	if err := run(path, fam, 1.25, &strings.Builder{}); err == nil {
		t.Fatal("expected error when no scaling families exist")
	}
	// Incomplete family (missing workers-4) is also no gate.
	path = writeBench(t, `[
		{"name": "BenchmarkParallelATPG/mult8/workers-1", "ns_per_op": 100e6, "workers": 1, "cpus": 4}
	]`)
	if err := run(path, fam, 1.25, &strings.Builder{}); err == nil {
		t.Fatal("expected error when the family has no workers-4 row")
	}
}

func TestMissingAndMalformedFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.json"), fam, 1.25, &strings.Builder{}); err == nil {
		t.Fatal("expected error for missing file")
	}
	path := writeBench(t, `{not json`)
	if err := run(path, fam, 1.25, &strings.Builder{}); err == nil {
		t.Fatal("expected error for malformed JSON")
	}
}

const effortFam = "BenchmarkEffortLogOverhead"

func TestEffortOverheadWithinCap(t *testing.T) {
	path := writeBench(t, `[
		{"name": "BenchmarkEffortLogOverhead/off", "ns_per_op": 100e6, "workers": 4, "cpus": 4},
		{"name": "BenchmarkEffortLogOverhead/on", "ns_per_op": 102e6, "workers": 4, "cpus": 4}
	]`)
	var out strings.Builder
	if err := runOverhead(path, effortFam, 1.03, &out); err != nil {
		t.Fatalf("2%% overhead must pass a 3%% cap: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2.0%") {
		t.Fatalf("expected the measured overhead in output, got:\n%s", out.String())
	}
}

func TestEffortOverheadExceedsCap(t *testing.T) {
	path := writeBench(t, `[
		{"name": "BenchmarkEffortLogOverhead/off", "ns_per_op": 100e6, "workers": 4, "cpus": 4},
		{"name": "BenchmarkEffortLogOverhead/on", "ns_per_op": 110e6, "workers": 4, "cpus": 4}
	]`)
	err := runOverhead(path, effortFam, 1.03, &strings.Builder{})
	if err == nil {
		t.Fatal("10% overhead must fail a 3% cap")
	}
	if !strings.Contains(err.Error(), "overhead") {
		t.Fatalf("error %v does not name the overhead gate", err)
	}
}

const incFam = "BenchmarkIncrementalCDCL"

func TestIncrementalWithinCap(t *testing.T) {
	// Incremental faster on one circuit, marginally slower on the other —
	// both within the 1.05 cap. Single-CPU rows still gate: the ratio is a
	// same-machine comparison.
	path := writeBench(t, `[
		{"name": "BenchmarkIncrementalCDCL/mult16/fresh", "ns_per_op": 100e6, "workers": 1, "cpus": 1},
		{"name": "BenchmarkIncrementalCDCL/mult16/incremental", "ns_per_op": 60e6, "workers": 1, "cpus": 1},
		{"name": "BenchmarkIncrementalCDCL/rand200/fresh", "ns_per_op": 50e6, "workers": 1, "cpus": 1},
		{"name": "BenchmarkIncrementalCDCL/rand200/incremental", "ns_per_op": 52e6, "workers": 1, "cpus": 1}
	]`)
	var out strings.Builder
	if err := runIncremental(path, incFam, 1.05, &out); err != nil {
		t.Fatalf("within-cap pairs must pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0.60x") || !strings.Contains(out.String(), "1.04x") {
		t.Fatalf("expected recomputed ratios in output, got:\n%s", out.String())
	}
}

func TestIncrementalExceedsCap(t *testing.T) {
	// One healthy pair must not mask the regressed one.
	path := writeBench(t, `[
		{"name": "BenchmarkIncrementalCDCL/mult16/fresh", "ns_per_op": 100e6, "workers": 1, "cpus": 1},
		{"name": "BenchmarkIncrementalCDCL/mult16/incremental", "ns_per_op": 60e6, "workers": 1, "cpus": 1},
		{"name": "BenchmarkIncrementalCDCL/rand200/fresh", "ns_per_op": 50e6, "workers": 1, "cpus": 1},
		{"name": "BenchmarkIncrementalCDCL/rand200/incremental", "ns_per_op": 60e6, "workers": 1, "cpus": 1}
	]`)
	err := runIncremental(path, incFam, 1.05, &strings.Builder{})
	if err == nil {
		t.Fatal("1.20x regression must fail a 1.05 cap")
	}
	if !strings.Contains(err.Error(), "1 of 2") {
		t.Fatalf("expected '1 of 2' pairs in error, got: %v", err)
	}
}

func TestIncrementalSkipsAndHalfPairs(t *testing.T) {
	// No pairs at all: a note, not a failure (the bench step may not have
	// run the family).
	missing := writeBench(t, `[
		{"name": "BenchmarkParallelATPG/mult8/workers-1", "ns_per_op": 100e6, "workers": 1, "cpus": 4}
	]`)
	var out strings.Builder
	if err := runIncremental(missing, incFam, 1.05, &out); err != nil {
		t.Fatalf("absent family must be skipped: %v", err)
	}
	if !strings.Contains(out.String(), "skip") {
		t.Fatalf("expected a skip note, got:\n%s", out.String())
	}
	// A half-recorded pair is a broken bench run, not absent evidence.
	half := writeBench(t, `[
		{"name": "BenchmarkIncrementalCDCL/mult16/fresh", "ns_per_op": 100e6, "workers": 1, "cpus": 1}
	]`)
	if err := runIncremental(half, incFam, 1.05, &strings.Builder{}); err == nil {
		t.Fatal("half-recorded pair must fail")
	}
}

const routeFam = "BenchmarkRoutedPortfolio"

func TestRouteWithinCap(t *testing.T) {
	// Routed faster and fewer conflicts on both circuits: both checks pass.
	path := writeBench(t, `[
		{"name": "BenchmarkRoutedPortfolio/mult16/unrouted", "ns_per_op": 100e6, "workers": 1, "cpus": 1, "conflicts": 307},
		{"name": "BenchmarkRoutedPortfolio/mult16/routed", "ns_per_op": 45e6, "workers": 1, "cpus": 1, "conflicts": 184},
		{"name": "BenchmarkRoutedPortfolio/rand200/unrouted", "ns_per_op": 50e6, "workers": 1, "cpus": 1, "conflicts": 2006},
		{"name": "BenchmarkRoutedPortfolio/rand200/routed", "ns_per_op": 42e6, "workers": 1, "cpus": 1, "conflicts": 196}
	]`)
	var out strings.Builder
	if err := runRoute(path, routeFam, 1.0, &out); err != nil {
		t.Fatalf("within-cap pairs must pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0.45x") || !strings.Contains(out.String(), "0.84x") {
		t.Fatalf("expected recomputed ratios in output, got:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "conflicts 184 vs unrouted 307") {
		t.Fatalf("expected the conflict check in output, got:\n%s", out.String())
	}
}

func TestRouteSlowerFails(t *testing.T) {
	// Routed slower than unrouted on one circuit: the healthy pair must
	// not mask it.
	path := writeBench(t, `[
		{"name": "BenchmarkRoutedPortfolio/mult16/unrouted", "ns_per_op": 100e6, "workers": 1, "cpus": 1, "conflicts": 307},
		{"name": "BenchmarkRoutedPortfolio/mult16/routed", "ns_per_op": 45e6, "workers": 1, "cpus": 1, "conflicts": 184},
		{"name": "BenchmarkRoutedPortfolio/rand200/unrouted", "ns_per_op": 50e6, "workers": 1, "cpus": 1, "conflicts": 2006},
		{"name": "BenchmarkRoutedPortfolio/rand200/routed", "ns_per_op": 60e6, "workers": 1, "cpus": 1, "conflicts": 196}
	]`)
	if err := runRoute(path, routeFam, 1.0, &strings.Builder{}); err == nil {
		t.Fatal("routed 1.2x slower must fail a 1.0 cap")
	}
}

func TestRouteConflictsUpFails(t *testing.T) {
	// Routed faster but with MORE conflicts: the conflict half of the
	// gate must catch it even though the ns check passes.
	path := writeBench(t, `[
		{"name": "BenchmarkRoutedPortfolio/mult16/unrouted", "ns_per_op": 100e6, "workers": 1, "cpus": 1, "conflicts": 307},
		{"name": "BenchmarkRoutedPortfolio/mult16/routed", "ns_per_op": 45e6, "workers": 1, "cpus": 1, "conflicts": 400}
	]`)
	var out strings.Builder
	err := runRoute(path, routeFam, 1.0, &out)
	if err == nil {
		t.Fatalf("routed with more conflicts must fail:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("expected a FAIL line, got:\n%s", out.String())
	}
}

func TestRouteSkipsAndHalfPairs(t *testing.T) {
	// Absent family: a note, not a failure.
	missing := writeBench(t, `[
		{"name": "BenchmarkParallelATPG/mult8/workers-1", "ns_per_op": 100e6, "workers": 1, "cpus": 4}
	]`)
	var out strings.Builder
	if err := runRoute(missing, routeFam, 1.0, &out); err != nil {
		t.Fatalf("absent family must be skipped: %v", err)
	}
	if !strings.Contains(out.String(), "skip") {
		t.Fatalf("expected a skip note, got:\n%s", out.String())
	}
	// Half-recorded pair: a broken bench run.
	half := writeBench(t, `[
		{"name": "BenchmarkRoutedPortfolio/mult16/routed", "ns_per_op": 45e6, "workers": 1, "cpus": 1, "conflicts": 184}
	]`)
	if err := runRoute(half, routeFam, 1.0, &strings.Builder{}); err == nil {
		t.Fatal("half-recorded pair must fail")
	}
	// Pairs without conflicts recorded gate only the ns ratio.
	noConf := writeBench(t, `[
		{"name": "BenchmarkRoutedPortfolio/mult16/unrouted", "ns_per_op": 100e6, "workers": 1, "cpus": 1},
		{"name": "BenchmarkRoutedPortfolio/mult16/routed", "ns_per_op": 45e6, "workers": 1, "cpus": 1}
	]`)
	out.Reset()
	if err := runRoute(noConf, routeFam, 1.0, &out); err != nil {
		t.Fatalf("conflict-less pair must gate ns only: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "conflicts") {
		t.Fatalf("conflict check ran without recorded conflicts:\n%s", out.String())
	}
}

func TestEffortOverheadSkips(t *testing.T) {
	// Missing rows and single-CPU measurements are notes, not failures.
	missing := writeBench(t, `[
		{"name": "BenchmarkParallelATPG/mult8/workers-1", "ns_per_op": 100e6, "workers": 1, "cpus": 4}
	]`)
	var out strings.Builder
	if err := runOverhead(missing, effortFam, 1.03, &out); err != nil {
		t.Fatalf("missing pair must be skipped: %v", err)
	}
	if !strings.Contains(out.String(), "skip") {
		t.Fatalf("expected a skip note, got:\n%s", out.String())
	}
	oneCPU := writeBench(t, `[
		{"name": "BenchmarkEffortLogOverhead/off", "ns_per_op": 100e6, "workers": 4, "cpus": 1},
		{"name": "BenchmarkEffortLogOverhead/on", "ns_per_op": 150e6, "workers": 4, "cpus": 1}
	]`)
	out.Reset()
	if err := runOverhead(oneCPU, effortFam, 1.03, &out); err != nil {
		t.Fatalf("single-CPU pair must be skipped: %v", err)
	}
	if !strings.Contains(out.String(), "skip") {
		t.Fatalf("expected a skip note, got:\n%s", out.String())
	}
}
