// Command scalecheck is the CI worker-scaling regression gate: it reads
// the committed BENCH_atpg.json, finds every benchmark family under
// -family that recorded both a workers-1 and a workers-4 row, recomputes
// the 1→4 speedup from the raw ns/op, and exits non-zero when any family
// falls below -min-speedup.
//
// The threshold is deliberately generous (default 1.25x, far under the
// ideal 4x): the gate exists to catch the engine regressing to flat
// scaling — the bug where every worker funnels through one mutex and
// four workers run no faster than one — not to pin an exact parallel
// efficiency, which varies with runner load.
//
// Rows measured on a single-CPU box (cpus < 2) are skipped with a note:
// a speedup measured without parallel hardware says nothing about
// scaling. CI runners have multiple cores, so the gate is live there.
//
// A second gate bounds the effort-log overhead: the
// BenchmarkEffortLogOverhead off/on pair must stay within
// -max-effort-overhead (default 1.03 — streaming per-fault effort
// records may cost at most 3%). Missing rows or single-CPU measurements
// are skipped with a note, like the scaling gate; -max-effort-overhead 0
// disables the gate.
//
// A third gate bounds incremental-solving regressions: every
// BenchmarkIncrementalCDCL fresh/incremental pair must keep the
// incremental ns/op within -max-incremental-regression of fresh
// (default 1.05). Unlike the scaling gate this is a same-machine
// single-worker ratio, so it is checked regardless of CPU count;
// -max-incremental-regression 0 disables it.
//
// A fourth gate holds the routed portfolio's headline win: every
// BenchmarkRoutedPortfolio unrouted/routed pair must keep routed ns/op
// within -max-route-regression of unrouted (default 1.0 — routing must
// never make a circuit slower) AND keep routed SAT conflicts strictly
// below unrouted when the pair recorded any. Conflicts are
// deterministic, so the conflict half of the gate has no noise margin;
// -max-route-regression 0 disables the whole gate. Same-machine
// single-worker ratios, so no cpus skip.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// row mirrors the BENCH_atpg.json fields scalecheck consumes; extra
// fields are ignored.
type row struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	Workers   int     `json:"workers"`
	CPUs      int     `json:"cpus"`
	Conflicts float64 `json:"conflicts"`
}

func main() {
	bench := flag.String("bench", "BENCH_atpg.json", "path to the benchmark record file")
	family := flag.String("family", "BenchmarkParallelATPG", "benchmark name prefix to gate on")
	minSpeedup := flag.Float64("min-speedup", 1.25, "minimum workers-1 / workers-4 ns ratio")
	effortFamily := flag.String("effort-family", "BenchmarkEffortLogOverhead", "off/on benchmark pair to gate effort-log overhead on")
	maxOverhead := flag.Float64("max-effort-overhead", 1.03, "maximum on/off ns ratio for the effort-log pair (0 = skip the gate)")
	incFamily := flag.String("incremental-family", "BenchmarkIncrementalCDCL", "fresh/incremental benchmark pairs to gate incremental solving on")
	maxIncremental := flag.Float64("max-incremental-regression", 1.05, "maximum incremental/fresh ns ratio per pair (0 = skip the gate)")
	routeFamily := flag.String("route-family", "BenchmarkRoutedPortfolio", "unrouted/routed benchmark pairs to gate fault routing on")
	maxRoute := flag.Float64("max-route-regression", 1.0, "maximum routed/unrouted ns ratio per pair; routed conflicts must also stay below unrouted (0 = skip the gate)")
	flag.Parse()
	if err := run(*bench, *family, *minSpeedup, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "scalecheck: %v\n", err)
		os.Exit(1)
	}
	if *maxOverhead > 0 {
		if err := runOverhead(*bench, *effortFamily, *maxOverhead, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "scalecheck: %v\n", err)
			os.Exit(1)
		}
	}
	if *maxIncremental > 0 {
		if err := runIncremental(*bench, *incFamily, *maxIncremental, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "scalecheck: %v\n", err)
			os.Exit(1)
		}
	}
	if *maxRoute > 0 {
		if err := runRoute(*bench, *routeFamily, *maxRoute, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "scalecheck: %v\n", err)
			os.Exit(1)
		}
	}
}

// loadRows reads and parses the benchmark record file.
func loadRows(benchPath string) ([]row, error) {
	buf, err := os.ReadFile(benchPath)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(buf, &rows); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", benchPath, err)
	}
	return rows, nil
}

// runOverhead gates the effort-log overhead: the "<family>/on" row may
// cost at most maxRatio× the "<family>/off" row. Rows that are missing
// (the bench step did not run the pair) or measured on a single CPU are
// skipped with a note rather than failed — absent evidence is not a
// regression.
func runOverhead(benchPath, family string, maxRatio float64, out io.Writer) error {
	rows, err := loadRows(benchPath)
	if err != nil {
		return err
	}
	var off, on *row
	for i := range rows {
		switch rows[i].Name {
		case family + "/off":
			off = &rows[i]
		case family + "/on":
			on = &rows[i]
		}
	}
	switch {
	case off == nil || on == nil:
		fmt.Fprintf(out, "skip %s: off/on pair not recorded\n", family)
		return nil
	case off.CPUs < 2 || on.CPUs < 2:
		fmt.Fprintf(out, "skip %s: measured with %d CPU(s); overhead needs a parallel run\n",
			family, min(off.CPUs, on.CPUs))
		return nil
	case off.NsPerOp <= 0 || on.NsPerOp <= 0:
		return fmt.Errorf("%s: non-positive ns_per_op", family)
	}
	ratio := on.NsPerOp / off.NsPerOp
	if ratio > maxRatio {
		fmt.Fprintf(out, "FAIL %s: effort log costs %.1f%% (%.1fms -> %.1fms, cap %.1f%%)\n",
			family, 100*(ratio-1), off.NsPerOp/1e6, on.NsPerOp/1e6, 100*(maxRatio-1))
		return fmt.Errorf("effort-log overhead %.3fx exceeds %.3fx", ratio, maxRatio)
	}
	fmt.Fprintf(out, "ok   %s: effort log costs %.1f%% (%.1fms -> %.1fms, cap %.1f%%)\n",
		family, 100*(ratio-1), off.NsPerOp/1e6, on.NsPerOp/1e6, 100*(maxRatio-1))
	return nil
}

// runIncremental gates incremental solving: every "<family>/<circuit>"
// pair of "/fresh" and "/incremental" rows must keep incremental ns/op
// within maxRatio× fresh. The ratio compares two single-worker runs on
// the same machine, so a single-CPU measurement is as valid as any —
// there is no cpus skip. Missing pairs are skipped with a note; no pairs
// at all is an error only when at least one row under family exists
// (absent evidence is not a regression, a half-recorded pair is).
func runIncremental(benchPath, family string, maxRatio float64, out io.Writer) error {
	rows, err := loadRows(benchPath)
	if err != nil {
		return err
	}
	type pair struct {
		fresh, inc *row
	}
	pairs := map[string]*pair{}
	var order []string
	for i := range rows {
		name, ok := strings.CutPrefix(rows[i].Name, family+"/")
		if !ok {
			continue
		}
		var circ string
		var fresh bool
		switch {
		case strings.HasSuffix(name, "/fresh"):
			circ, fresh = strings.TrimSuffix(name, "/fresh"), true
		case strings.HasSuffix(name, "/incremental"):
			circ = strings.TrimSuffix(name, "/incremental")
		default:
			continue
		}
		p := pairs[circ]
		if p == nil {
			p = &pair{}
			pairs[circ] = p
			order = append(order, circ)
		}
		if fresh {
			p.fresh = &rows[i]
		} else {
			p.inc = &rows[i]
		}
	}
	if len(order) == 0 {
		fmt.Fprintf(out, "skip %s: no fresh/incremental pairs recorded\n", family)
		return nil
	}
	failed := 0
	for _, circ := range order {
		p := pairs[circ]
		if p.fresh == nil || p.inc == nil {
			return fmt.Errorf("%s/%s: half-recorded pair (fresh %v, incremental %v)",
				family, circ, p.fresh != nil, p.inc != nil)
		}
		if p.fresh.NsPerOp <= 0 || p.inc.NsPerOp <= 0 {
			return fmt.Errorf("%s/%s: non-positive ns_per_op", family, circ)
		}
		ratio := p.inc.NsPerOp / p.fresh.NsPerOp
		status := "ok"
		if ratio > maxRatio {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(out, "%-4s %s/%s: incremental %.2fx of fresh (%.1fms -> %.1fms, cap %.2fx)\n",
			status, family, circ, ratio, p.fresh.NsPerOp/1e6, p.inc.NsPerOp/1e6, maxRatio)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d incremental pairs above %.2fx of fresh", failed, len(order), maxRatio)
	}
	return nil
}

// runRoute gates the routed portfolio: every "<family>/<circuit>" pair
// of "/unrouted" and "/routed" rows must keep routed ns/op within
// maxRatio× unrouted, and — when the pair recorded conflicts — routed
// conflicts strictly below unrouted. Like the incremental gate it
// compares two single-worker runs on the same machine, so there is no
// cpus skip; missing the family entirely is a note, a half-recorded
// pair an error.
func runRoute(benchPath, family string, maxRatio float64, out io.Writer) error {
	rows, err := loadRows(benchPath)
	if err != nil {
		return err
	}
	type pair struct {
		unrouted, routed *row
	}
	pairs := map[string]*pair{}
	var order []string
	for i := range rows {
		name, ok := strings.CutPrefix(rows[i].Name, family+"/")
		if !ok {
			continue
		}
		var circ string
		var unrouted bool
		switch {
		case strings.HasSuffix(name, "/unrouted"):
			circ, unrouted = strings.TrimSuffix(name, "/unrouted"), true
		case strings.HasSuffix(name, "/routed"):
			circ = strings.TrimSuffix(name, "/routed")
		default:
			continue
		}
		p := pairs[circ]
		if p == nil {
			p = &pair{}
			pairs[circ] = p
			order = append(order, circ)
		}
		if unrouted {
			p.unrouted = &rows[i]
		} else {
			p.routed = &rows[i]
		}
	}
	if len(order) == 0 {
		fmt.Fprintf(out, "skip %s: no unrouted/routed pairs recorded\n", family)
		return nil
	}
	failed := 0
	for _, circ := range order {
		p := pairs[circ]
		if p.unrouted == nil || p.routed == nil {
			return fmt.Errorf("%s/%s: half-recorded pair (unrouted %v, routed %v)",
				family, circ, p.unrouted != nil, p.routed != nil)
		}
		if p.unrouted.NsPerOp <= 0 || p.routed.NsPerOp <= 0 {
			return fmt.Errorf("%s/%s: non-positive ns_per_op", family, circ)
		}
		ratio := p.routed.NsPerOp / p.unrouted.NsPerOp
		status := "ok"
		if ratio > maxRatio {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(out, "%-4s %s/%s: routed %.2fx of unrouted (%.1fms -> %.1fms, cap %.2fx)\n",
			status, family, circ, ratio, p.unrouted.NsPerOp/1e6, p.routed.NsPerOp/1e6, maxRatio)
		if p.unrouted.Conflicts > 0 || p.routed.Conflicts > 0 {
			cStatus := "ok"
			if p.routed.Conflicts >= p.unrouted.Conflicts {
				cStatus = "FAIL"
				failed++
			}
			fmt.Fprintf(out, "%-4s %s/%s: routed conflicts %.0f vs unrouted %.0f (must be below)\n",
				cStatus, family, circ, p.routed.Conflicts, p.unrouted.Conflicts)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d routed-portfolio checks failed (ns cap %.2fx, conflicts must drop)", failed, maxRatio)
	}
	return nil
}

func run(benchPath, family string, minSpeedup float64, out io.Writer) error {
	rows, err := loadRows(benchPath)
	if err != nil {
		return err
	}

	// Group "<fam>/workers-N" rows by fam, keeping the two endpoints the
	// gate compares.
	type endpoints struct {
		w1, w4 *row
	}
	fams := map[string]*endpoints{}
	var order []string
	for i := range rows {
		r := &rows[i]
		if !strings.HasPrefix(r.Name, family) {
			continue
		}
		suffix := fmt.Sprintf("/workers-%d", r.Workers)
		if (r.Workers != 1 && r.Workers != 4) || !strings.HasSuffix(r.Name, suffix) {
			continue
		}
		fam := strings.TrimSuffix(r.Name, suffix)
		e := fams[fam]
		if e == nil {
			e = &endpoints{}
			fams[fam] = e
			order = append(order, fam)
		}
		if r.Workers == 1 {
			e.w1 = r
		} else {
			e.w4 = r
		}
	}

	checked, skipped, failed := 0, 0, 0
	for _, fam := range order {
		e := fams[fam]
		if e.w1 == nil || e.w4 == nil {
			continue
		}
		if e.w1.CPUs < 2 || e.w4.CPUs < 2 {
			fmt.Fprintf(out, "skip %s: measured with %d CPU(s); scaling needs >= 2\n",
				fam, min(e.w1.CPUs, e.w4.CPUs))
			skipped++
			continue
		}
		if e.w1.NsPerOp <= 0 || e.w4.NsPerOp <= 0 {
			return fmt.Errorf("%s: non-positive ns_per_op", fam)
		}
		speedup := e.w1.NsPerOp / e.w4.NsPerOp
		checked++
		status := "ok"
		if speedup < minSpeedup {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(out, "%-4s %s: %.2fx at 4 workers (%.1fms -> %.1fms, floor %.2fx)\n",
			status, fam, speedup, e.w1.NsPerOp/1e6, e.w4.NsPerOp/1e6, minSpeedup)
	}

	if checked == 0 && skipped == 0 {
		return fmt.Errorf("no %q families with both workers-1 and workers-4 rows in %s — did the bench run record anything?", family, benchPath)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d families below %.2fx speedup at 4 workers", failed, checked, minSpeedup)
	}
	return nil
}
