package atpgeasy

// One testing.B benchmark per reproduced table/figure of "Why is ATPG
// Easy?" plus the ablation benches DESIGN.md calls out. Benchmarks run the
// quick-scale experiment configurations; `cmd/experiments` runs the
// full-scale versions. Regenerate everything with:
//
//	go test -bench=. -benchmem ./...

import (
	"context"
	"io"
	"reflect"
	"testing"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/cnf"
	"atpgeasy/internal/experiments"
	"atpgeasy/internal/faultsim"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/mla"
	"atpgeasy/internal/obs"
	"atpgeasy/internal/partition"
	"atpgeasy/internal/sat"
)

func benchCfg(seed int64) experiments.Config {
	return experiments.Config{Quick: true, Seed: seed}
}

// BenchmarkFigure1ATPG regenerates Figure 1: per-fault SAT solving over
// the benchmark suites, time vs. instance size.
func BenchmarkFigure1ATPG(b *testing.B) {
	cfg := benchCfg(1)
	cfg.MaxFaultsPerCircuit = 20
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.FracUnder10ms < 0.9 {
			b.Fatalf("fast fraction %.2f below the paper's 0.9", res.FracUnder10ms)
		}
	}
}

// BenchmarkFigure8MCNC regenerates Figure 8(a): per-fault cut-width of
// C_ψ^sub over the MCNC91-like suite.
func BenchmarkFigure8MCNC(b *testing.B) {
	cfg := benchCfg(2)
	cfg.MaxFaultsPerCircuit = 8
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(cfg, experiments.SuiteMCNC); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8ISCAS regenerates Figure 8(b) on the ISCAS85-like suite.
func BenchmarkFigure8ISCAS(b *testing.B) {
	cfg := benchCfg(3)
	cfg.MaxFaultsPerCircuit = 8
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(cfg, experiments.SuiteISCAS); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratedCutwidth regenerates the Section 5.2.3 generated-
// circuit width study.
func BenchmarkGeneratedCutwidth(b *testing.B) {
	cfg := benchCfg(4)
	cfg.MaxFaultsPerCircuit = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GeneratedStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkedExample regenerates Figures 4–7 (the Section 4 worked
// example).
func BenchmarkWorkedExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WorkedExample(benchCfg(5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQHornStudy regenerates the Section 3.1 class-membership table.
func BenchmarkQHornStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.QHornStudy(benchCfg(6)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAvgTimeStudy regenerates the Section 3.3 parameterization.
func BenchmarkAvgTimeStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AvgTimeStudy(benchCfg(7)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBDDStudy regenerates the Section 6 bound comparison.
func BenchmarkBDDStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BDDStudy(benchCfg(8)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachingVsSimple is the DESIGN.md ablation: the sub-formula
// cache against plain backtracking on the same instances and ordering.
func BenchmarkCachingVsSimple(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CachingAblation(benchCfg(9)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrderingAblation isolates ordering quality: the caching solver
// on one CIRCUIT-SAT instance under the MLA ordering vs. a topological
// ordering.
func BenchmarkOrderingAblation(b *testing.B) {
	c := gen.CellularArray1D(8)
	f, err := cnf.FromCircuit(c, nil)
	if err != nil {
		b.Fatal(err)
	}
	g := hypergraph.FromCircuit(c)
	_, mlaOrder := mla.EstimateCutWidth(g, mla.Options{})
	topo := append([]int(nil), c.TopoOrder()...)
	b.Run("mla-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if s := (&sat.Caching{Order: mlaOrder}).Solve(f); s.Status == sat.Unknown {
				b.Fatal("aborted")
			}
		}
	})
	b.Run("topo-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if s := (&sat.Caching{Order: topo}).Solve(f); s.Status == sat.Unknown {
				b.Fatal("aborted")
			}
		}
	})
}

// BenchmarkFMRestarts measures the partitioner's quality/time knob that
// backs every cut-width estimate.
func BenchmarkFMRestarts(b *testing.B) {
	c := gen.Random(gen.RandomParams{Inputs: 40, Gates: 1200, Seed: 17})
	g := hypergraph.FromCircuit(c)
	for _, restarts := range []int{1, 4, 8} {
		restarts := restarts
		b.Run(map[int]string{1: "restarts-1", 4: "restarts-4", 8: "restarts-8"}[restarts], func(b *testing.B) {
			cut := 0
			for i := 0; i < b.N; i++ {
				r := partition.Bipartition(g, partition.Options{Restarts: restarts, Seed: int64(i)})
				cut = r.Cut
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// BenchmarkFaultCollapsing measures the instance-count reduction of the
// collapsing + fault-dropping flow on the Figure 1 workload.
func BenchmarkFaultCollapsing(b *testing.B) {
	c := gen.ALU(8)
	eng := &atpg.Engine{}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(context.Background(), c, atpg.RunOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("collapse+drop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(context.Background(), c, atpg.RunOptions{Collapse: true, DropDetected: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelATPG measures worker scaling on a full collapse+drop
// run (wall-clock; summed SAT time is worker-count invariant). Two
// workloads large enough for per-fault solves to dominate dispatch:
// mult8 (deep multiplier cones, uneven effort) and cla32 (wide, shallow,
// drop-heavy). The workers-2/4 cases also assert the run is bit-for-bit
// identical to workers-1 — same vectors, same verdict counts — which is
// the determinism contract the speculative-commit dispatcher guarantees.
func BenchmarkParallelATPG(b *testing.B) {
	for _, tc := range []struct {
		name string
		c    *Circuit
	}{
		{"mult8", gen.ArrayMultiplier(8)},
		{"cla32", gen.CarryLookaheadAdder(32)},
	} {
		var baseVecs [][]bool
		var baseDet, baseDrop int
		for _, workers := range []int{1, 2, 4} {
			workers := workers
			b.Run(tc.name+"/"+map[int]string{1: "workers-1", 2: "workers-2", 4: "workers-4"}[workers], func(b *testing.B) {
				eng := &atpg.Engine{Workers: workers}
				var sum *atpg.Summary
				for i := 0; i < b.N; i++ {
					s, err := eng.Run(context.Background(), tc.c, atpg.RunOptions{Collapse: true, DropDetected: true})
					if err != nil {
						b.Fatal(err)
					}
					if s.Coverage() != 1 {
						b.Fatalf("coverage %v", s.Coverage())
					}
					sum = s
				}
				if workers == 1 {
					baseVecs, baseDet, baseDrop = sum.Vectors, sum.Detected, sum.DroppedByFaultSim
				} else if baseVecs != nil { // workers-1 may be filtered out by -bench
					if sum.Detected != baseDet || sum.DroppedByFaultSim != baseDrop {
						b.Fatalf("workers-%d verdicts (det %d, dropped %d) differ from workers-1 (det %d, dropped %d)",
							workers, sum.Detected, sum.DroppedByFaultSim, baseDet, baseDrop)
					}
					if !reflect.DeepEqual(sum.Vectors, baseVecs) {
						b.Fatalf("workers-%d vectors differ from workers-1", workers)
					}
				}
				recordBench(b, workers)
			})
		}
	}
}

// BenchmarkTelemetryOverhead pits a telemetry-free parallel run against
// the same run with the metrics registry and a JSONL trace attached. The
// "off" case must stay within ~2% of the pre-telemetry engine (disabled
// telemetry is a single nil check per fault); the instrumented case shows
// what full observability costs.
func BenchmarkTelemetryOverhead(b *testing.B) {
	c := gen.ArrayMultiplier(6)
	const workers = 4
	run := func(b *testing.B, tel *atpg.Telemetry) {
		eng := &atpg.Engine{Workers: workers}
		for i := 0; i < b.N; i++ {
			sum, err := eng.Run(context.Background(), c, atpg.RunOptions{
				Collapse: true, DropDetected: true, Telemetry: tel,
			})
			if err != nil {
				b.Fatal(err)
			}
			if sum.Coverage() != 1 {
				b.Fatalf("coverage %v", sum.Coverage())
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, nil)
		recordBench(b, workers)
	})
	b.Run("metrics+trace", func(b *testing.B) {
		tel := &atpg.Telemetry{
			Metrics: atpg.NewMetrics(obs.NewRegistry(), workers),
			Trace:   obs.NewTrace(io.Discard),
		}
		run(b, tel)
		recordBench(b, workers)
		if err := tel.Trace.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkEffortLogOverhead pits an effort-log-free parallel run
// against the same run streaming one structured record per fault (with
// the up-front feature extraction that implies). The disabled case is a
// single nil check per fault; the enabled case must stay within a few
// percent — cmd/scalecheck gates the ratio at 3%.
func BenchmarkEffortLogOverhead(b *testing.B) {
	c := gen.ArrayMultiplier(6)
	const workers = 4
	run := func(b *testing.B, makeLog func() *atpg.EffortLog) {
		eng := &atpg.Engine{Workers: workers}
		for i := 0; i < b.N; i++ {
			log := makeLog()
			sum, err := eng.Run(context.Background(), c, atpg.RunOptions{
				Collapse: true, DropDetected: true, EffortLog: log,
			})
			if err != nil {
				b.Fatal(err)
			}
			if sum.Coverage() != 1 {
				b.Fatalf("coverage %v", sum.Coverage())
			}
			if log != nil {
				if log.Records() == 0 {
					b.Fatal("effort log stayed empty")
				}
				if err := log.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, func() *atpg.EffortLog { return nil })
		recordBench(b, workers)
	})
	b.Run("on", func(b *testing.B) {
		run(b, func() *atpg.EffortLog { return atpg.NewEffortLog(io.Discard) })
		recordBench(b, workers)
	})
}

// BenchmarkResidualKey compares the two residual-key builders: the
// string-returning ResidualKey (one allocation per call) against
// AppendResidualKey into a reused buffer (zero steady-state allocations).
// This is the per-node cost the caching solver's exact-key mode pays.
func BenchmarkResidualKey(b *testing.B) {
	c := gen.CarryLookaheadAdder(16)
	f, err := cnf.FromCircuit(c, nil)
	if err != nil {
		b.Fatal(err)
	}
	// A mid-search partial assignment: every third variable set, so the
	// residual keeps a healthy mix of satisfied, shrunk and open clauses.
	assign := make([]cnf.Value, f.NumVars)
	for v := 0; v < f.NumVars; v += 3 {
		if v%2 == 0 {
			assign[v] = cnf.True
		} else {
			assign[v] = cnf.False
		}
	}
	b.Run("string", func(b *testing.B) {
		allocs := testing.AllocsPerRun(10, func() { _ = f.ResidualKey(assign) })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(f.ResidualKey(assign)) == 0 {
				b.Fatal("empty key")
			}
		}
		recordBenchAllocs(b, 1, allocs)
	})
	b.Run("append-reuse", func(b *testing.B) {
		var buf []byte
		allocs := testing.AllocsPerRun(10, func() { buf = f.AppendResidualKey(buf[:0], assign) })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = f.AppendResidualKey(buf[:0], assign)
			if len(buf) == 0 {
				b.Fatal("empty key")
			}
		}
		recordBenchAllocs(b, 1, allocs)
	})
}

// BenchmarkCachingSolver is the tentpole A/B: Algorithm 1 on a log-width
// ATPG miter under the MLA ordering, with the cache keyed three ways —
// exact byte keys rebuilt per node (the old scheme, kept as VerifyKeys
// mode), the incremental 128-bit digest, and the digest plus a reused
// solver arena. The committed BENCH_atpg.json rows must show hashed ≥2×
// faster and ≥10× fewer allocations than exact-key.
func BenchmarkCachingSolver(b *testing.B) {
	c := gen.ParityTree(48)
	faults := atpg.Collapse(c, atpg.AllFaults(c))
	m, err := atpg.NewMiter(c, faults[len(faults)/2])
	if err != nil {
		b.Fatal(err)
	}
	f, err := m.Encode()
	if err != nil {
		b.Fatal(err)
	}
	g := hypergraph.FromCircuit(m.Circuit)
	_, order := mla.EstimateCutWidth(g, mla.Options{Partition: partition.Options{Seed: 1}})

	run := func(b *testing.B, solve func() sat.Solution) {
		b.Helper()
		allocs := testing.AllocsPerRun(1, func() { solve() })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s := solve(); s.Status == sat.Unknown {
				b.Fatal("aborted")
			}
		}
		recordBenchAllocs(b, 1, allocs)
	}
	b.Run("exact-key", func(b *testing.B) {
		s := &sat.Caching{Order: order, VerifyKeys: true}
		run(b, func() sat.Solution { return s.Solve(f) })
	})
	b.Run("hashed", func(b *testing.B) {
		s := &sat.Caching{Order: order}
		run(b, func() sat.Solution { return s.Solve(f) })
	})
	b.Run("hashed-arena", func(b *testing.B) {
		s := &sat.Caching{Order: order}
		arena := sat.NewArena()
		run(b, func() sat.Solution { return s.SolveArena(f, arena) })
	})
}

// BenchmarkEngineArenaReuse measures what the per-worker scratch arenas
// buy on a full collapsed run: solver buffers, CNF encoder slab and
// fault-simulation scratch reused across faults vs. allocated fresh.
func BenchmarkEngineArenaReuse(b *testing.B) {
	c := gen.ParityTree(16)
	run := func(b *testing.B, disable bool) {
		b.Helper()
		eng := &atpg.Engine{Solver: &sat.Caching{}, Workers: 1, DisableScratchReuse: disable}
		opt := atpg.RunOptions{Collapse: true}
		allocs := testing.AllocsPerRun(1, func() {
			if _, err := eng.Run(context.Background(), c, opt); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sum, err := eng.Run(context.Background(), c, opt)
			if err != nil {
				b.Fatal(err)
			}
			if sum.Aborted != 0 {
				b.Fatalf("aborted %d", sum.Aborted)
			}
		}
		recordBenchAllocs(b, 1, allocs)
	}
	b.Run("arena-reuse", func(b *testing.B) { run(b, false) })
	b.Run("fresh-per-fault", func(b *testing.B) { run(b, true) })
}

// BenchmarkRPTPhase is the tentpole A/B: the full engine run with and
// without the random-pattern pre-phase, at equal coverage. The committed
// BENCH_atpg.json rows must show the rpt-on case issuing ≤50% of the
// rpt-off case's SAT solver calls (sat_calls) on every circuit.
func BenchmarkRPTPhase(b *testing.B) {
	const workers = 2
	for _, tc := range []struct {
		name string
		c    func() *Circuit
	}{
		{"cla8", func() *Circuit { return gen.CarryLookaheadAdder(8) }},
		{"mult5", func() *Circuit { return gen.ArrayMultiplier(5) }},
	} {
		c := tc.c()
		base := atpg.RunOptions{Collapse: true, Dominance: true, DropDetected: true, Seed: 11}
		run := func(b *testing.B, opt atpg.RunOptions) (calls int, cov float64) {
			b.Helper()
			eng := &atpg.Engine{Workers: workers}
			for i := 0; i < b.N; i++ {
				sum, err := eng.Run(context.Background(), c, opt)
				if err != nil {
					b.Fatal(err)
				}
				calls, cov = len(sum.Results), sum.Coverage()
			}
			return calls, cov
		}
		var callsOff int
		var covOff float64
		b.Run(tc.name+"/rpt-off", func(b *testing.B) {
			callsOff, covOff = run(b, base)
			recordBenchSAT(b, workers, callsOff)
		})
		b.Run(tc.name+"/rpt-on", func(b *testing.B) {
			opt := base
			opt.RPTBatches = atpg.DefaultRPTBatches
			callsOn, covOn := run(b, opt)
			if callsOff > 0 { // rpt-off may be filtered out by -bench
				if covOn != covOff {
					b.Fatalf("coverage %v with RPT, %v without", covOn, covOff)
				}
				if callsOn*2 > callsOff {
					b.Fatalf("RPT left %d of %d SAT calls (> 50%%)", callsOn, callsOff)
				}
			}
			recordBenchSAT(b, workers, callsOn)
		})
	}
}

// BenchmarkIncrementalCDCL is the tentpole A/B: region-grouped
// incremental solving — one persistent CDCL instance per worker, learned
// clauses alive across a fanout region's faults — against a fresh
// instance per fault (GroupMax 1: cold Load, nothing retained) on the
// same engine path. Both runs produce byte-identical vectors and solve
// the identical fault set (RPT and dropping off, one worker), so the
// rows are a pure knowledge-reuse comparison: ns/op is the full run,
// conflicts the deterministic total search. cmd/scalecheck gates the
// incremental/fresh ns ratio at 1.05; the committed rows must also show
// no conflict increase.
func BenchmarkIncrementalCDCL(b *testing.B) {
	for _, tc := range []struct {
		name string
		c    *Circuit
	}{
		{"mult16", gen.ArrayMultiplier(16)},
		{"rand200", gen.Random(gen.RandomParams{Inputs: 18, Gates: 200, Seed: 1})},
	} {
		run := func(b *testing.B, groupMax int) (conflicts int64) {
			b.Helper()
			eng := &atpg.Engine{Workers: 1}
			for i := 0; i < b.N; i++ {
				sum, err := eng.Run(context.Background(), tc.c, atpg.RunOptions{
					Collapse: true, Incremental: true, GroupMax: groupMax,
				})
				if err != nil {
					b.Fatal(err)
				}
				if sum.Aborted != 0 || sum.Errors != 0 {
					b.Fatalf("aborted %d, errors %d", sum.Aborted, sum.Errors)
				}
				conflicts = sum.SolverTotals.Conflicts
			}
			b.ReportMetric(float64(conflicts), "conflicts")
			return conflicts
		}
		var freshConflicts int64
		b.Run(tc.name+"/fresh", func(b *testing.B) {
			freshConflicts = run(b, 1)
			recordBenchConflicts(b, 1, freshConflicts)
		})
		b.Run(tc.name+"/incremental", func(b *testing.B) {
			conflicts := run(b, 0)
			if freshConflicts > 0 && conflicts > freshConflicts { // fresh may be filtered out by -bench
				b.Fatalf("retention cost search: %d conflicts incremental, %d fresh", conflicts, freshConflicts)
			}
			recordBenchConflicts(b, 1, conflicts)
		})
	}
}

// BenchmarkRoutedPortfolio is the router A/B: cut-width-guided portfolio
// dispatch — trivial and structural faults on the PODEM backend with a
// deterministic backtrack cap and CDCL fallback, low-width faults on the
// caching backtracker, hard faults on region-grouped incremental CDCL —
// against the same engine with routing off (everything on incremental
// CDCL). Both runs decide the identical fault set with full coverage
// (RPT and dropping off, one worker), so the rows isolate what routing
// buys: ns/op is the full run including classification, conflicts the
// CDCL work the structural backends avoided. cmd/scalecheck gates the
// routed/unrouted ns ratio; the committed rows must also show routed
// conflicts strictly below unrouted on both circuits.
func BenchmarkRoutedPortfolio(b *testing.B) {
	for _, tc := range []struct {
		name string
		c    *Circuit
	}{
		{"mult16", gen.ArrayMultiplier(16)},
		{"rand200", gen.Random(gen.RandomParams{Inputs: 18, Gates: 200, Seed: 1})},
	} {
		run := func(b *testing.B, route bool) (conflicts int64) {
			b.Helper()
			eng := &atpg.Engine{Workers: 1}
			for i := 0; i < b.N; i++ {
				sum, err := eng.Run(context.Background(), tc.c, atpg.RunOptions{
					Collapse: true, Incremental: true, Route: route,
				})
				if err != nil {
					b.Fatal(err)
				}
				if sum.Aborted != 0 || sum.Errors != 0 {
					b.Fatalf("aborted %d, errors %d", sum.Aborted, sum.Errors)
				}
				if route && sum.Routed == nil {
					b.Fatal("routed run reported no route summary")
				}
				conflicts = sum.SolverTotals.Conflicts
			}
			b.ReportMetric(float64(conflicts), "conflicts")
			return conflicts
		}
		var unroutedConflicts int64
		b.Run(tc.name+"/unrouted", func(b *testing.B) {
			unroutedConflicts = run(b, false)
			recordBenchConflicts(b, 1, unroutedConflicts)
		})
		b.Run(tc.name+"/routed", func(b *testing.B) {
			conflicts := run(b, true)
			if unroutedConflicts > 0 && conflicts >= unroutedConflicts { // unrouted may be filtered out by -bench
				b.Fatalf("routing saved no search: %d conflicts routed, %d unrouted", conflicts, unroutedConflicts)
			}
			recordBenchConflicts(b, 1, conflicts)
		})
	}
}

// BenchmarkEventDrivenFaultSim pits the event-driven simulator (fanout
// cone only, lazy good-value reads) against the brute-force full-circuit
// re-simulation it replaced, plus the early-exit query the fault-dropping
// path uses.
func BenchmarkEventDrivenFaultSim(b *testing.B) {
	c := gen.CarryLookaheadAdder(32)
	vecs := make([][]bool, 64)
	for p := range vecs {
		vecs[p] = make([]bool, len(c.Inputs))
		for i := range vecs[p] {
			vecs[p][i] = (p+i)%3 == 0
		}
	}
	words, err := faultsim.PackPatterns(c, vecs)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := faultsim.NewSimulator(c, words, 64)
	if err != nil {
		b.Fatal(err)
	}
	faults := atpg.AllFaults(c)
	b.Run("event-driven", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := faults[i%len(faults)]
			sim.Detects(f.Net, f.StuckAt)
		}
		recordBench(b, 1)
	})
	b.Run("early-exit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := faults[i%len(faults)]
			sim.DetectsAny(f.Net, f.StuckAt)
		}
		recordBench(b, 1)
	})
	b.Run("full-resim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := faults[i%len(faults)]
			faultsim.ReferenceDetects(c, words, 64, f.Net, f.StuckAt)
		}
		recordBench(b, 1)
	})
}

// BenchmarkDPLLSolve is a micro-benchmark of the production solver on one
// mid-size ATPG-SAT instance.
func BenchmarkDPLLSolve(b *testing.B) {
	c := gen.ArrayMultiplier(6)
	faults := atpg.Collapse(c, atpg.AllFaults(c))
	m, err := atpg.NewMiter(c, faults[len(faults)/2])
	if err != nil {
		b.Fatal(err)
	}
	f, err := m.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := (&sat.DPLL{}).Solve(f); s.Status == sat.Unknown {
			b.Fatal("aborted")
		}
	}
}

// BenchmarkFaultSim is a micro-benchmark of the 64-way parallel fault
// simulator.
func BenchmarkFaultSim(b *testing.B) {
	c := gen.CarryLookaheadAdder(32)
	vecs := make([][]bool, 64)
	for p := range vecs {
		vecs[p] = make([]bool, len(c.Inputs))
		for i := range vecs[p] {
			vecs[p][i] = (p+i)%3 == 0
		}
	}
	words, err := faultsim.PackPatterns(c, vecs)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := faultsim.NewSimulator(c, words, 64)
	if err != nil {
		b.Fatal(err)
	}
	faults := atpg.AllFaults(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := faults[i%len(faults)]
		sim.Detects(f.Net, f.StuckAt)
	}
}

// BenchmarkMLA is a micro-benchmark of the width estimator on a mid-size
// circuit.
func BenchmarkMLA(b *testing.B) {
	c := gen.Random(gen.RandomParams{Inputs: 30, Gates: 600, Seed: 23})
	g := hypergraph.FromCircuit(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mla.EstimateCutWidth(g, mla.Options{Partition: partition.Options{Seed: int64(i), Restarts: 2}})
	}
}

// BenchmarkSimulate64 measures the bit-parallel simulator against the
// scalar one (64 patterns per call vs. 1).
func BenchmarkSimulate64(b *testing.B) {
	c := gen.ArrayMultiplier(8)
	words := make([]uint64, len(c.Inputs))
	for i := range words {
		words[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	scalar := make([]bool, len(c.Inputs))
	b.Run("parallel64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Simulate64(words)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Simulate(scalar)
		}
	})
}
